"""Accuracy model monotonicity/bounds and the learned predictor."""

import numpy as np
import pytest

from repro.models import get_model
from repro.nas import (ACC_MAX, MBV3_SPACE, ArchConfig, arch_accuracy,
                       build_graph, fit_predictor, max_arch, min_arch,
                       plan_accuracy_penalty, random_arch, strategy_accuracy)
from repro.partition import Grid, layerwise_split_plan, single_device_plan, spatial_plan


SPACE = MBV3_SPACE


class TestArchAccuracy:
    def test_max_is_anchor(self):
        assert arch_accuracy(max_arch(SPACE), SPACE) == pytest.approx(
            ACC_MAX, abs=0.2)

    def test_min_in_low_seventies(self):
        acc = arch_accuracy(min_arch(SPACE), SPACE)
        assert 70.0 < acc < 72.5

    def test_max_below_resnext(self):
        """Fig. 15: only Neurosurgeon+ResNeXt covers the top accuracy."""
        assert arch_accuracy(max_arch(SPACE), SPACE) < get_model(
            "resnext101_32x8d").accuracy

    @pytest.mark.parametrize("dim", ["resolution", "depth", "kernel",
                                     "expand"])
    def test_monotone_per_dimension(self, dim):
        mx = max_arch(SPACE)
        slots = SPACE.num_stages * SPACE.max_depth
        if dim == "resolution":
            worse = ArchConfig(min(SPACE.resolution_options), mx.depths,
                               mx.kernels, mx.expands)
        elif dim == "depth":
            worse = ArchConfig(mx.resolution,
                               (SPACE.min_depth,) * SPACE.num_stages,
                               mx.kernels, mx.expands)
        elif dim == "kernel":
            worse = ArchConfig(mx.resolution, mx.depths,
                               (min(SPACE.kernel_options),) * slots,
                               mx.expands)
        else:
            worse = ArchConfig(mx.resolution, mx.depths, mx.kernels,
                               (min(SPACE.expand_options),) * slots)
        assert arch_accuracy(worse, SPACE) < arch_accuracy(mx, SPACE) - 0.3

    def test_deterministic(self):
        a = random_arch(SPACE, np.random.default_rng(1))
        assert arch_accuracy(a, SPACE) == arch_accuracy(a, SPACE)

    def test_residual_varies_across_archs(self):
        rng = np.random.default_rng(2)
        accs = {round(arch_accuracy(random_arch(SPACE, rng), SPACE), 6)
                for _ in range(20)}
        assert len(accs) > 15


class TestPlanPenalty:
    def _graph(self):
        return build_graph(max_arch(SPACE), SPACE)

    def test_unpartitioned_fp32_free(self):
        g = self._graph()
        assert plan_accuracy_penalty(single_device_plan(g)) == 0.0

    def test_partitioning_costs(self):
        g = self._graph()
        p = spatial_plan(g, Grid(2, 2), [1, 2, 3, 4])
        pen = plan_accuracy_penalty(p)
        assert 0.2 < pen < 1.5  # "small impact" per the paper

    def test_2x2_costs_more_than_1x2(self):
        g = self._graph()
        p12 = spatial_plan(g, Grid(1, 2), [1, 2])
        p22 = spatial_plan(g, Grid(2, 2), [1, 2, 3, 4])
        assert plan_accuracy_penalty(p22) > plan_accuracy_penalty(p12)

    def test_8bit_crossing_costs(self):
        g = self._graph()
        p32 = layerwise_split_plan(g, 5, bits=32)
        p8 = layerwise_split_plan(g, 5, bits=8)
        assert plan_accuracy_penalty(p8) > plan_accuracy_penalty(p32)

    def test_strategy_accuracy_combines(self):
        g = self._graph()
        a = max_arch(SPACE)
        p = spatial_plan(g, Grid(2, 2), [1, 2, 3, 4])
        assert strategy_accuracy(a, SPACE, p) == pytest.approx(
            arch_accuracy(a, SPACE) - plan_accuracy_penalty(p))


class TestAccuracyPredictor:
    def test_fit_reaches_low_mae(self):
        pred, mae = fit_predictor(SPACE, n_samples=400, epochs=60, seed=0)
        assert mae < 0.5  # half a percentage point

    def test_predict_tracks_ordering(self):
        pred, _ = fit_predictor(SPACE, n_samples=400, epochs=60, seed=0)
        hi = pred.predict(max_arch(SPACE))
        lo = pred.predict(min_arch(SPACE))
        assert hi > lo + 3.0

    def test_predict_batch_matches_single(self):
        pred, _ = fit_predictor(SPACE, n_samples=200, epochs=20, seed=1)
        rng = np.random.default_rng(0)
        archs = [random_arch(SPACE, rng) for _ in range(4)]
        batch = pred.predict_batch(archs)
        singles = [pred.predict(a) for a in archs]
        np.testing.assert_allclose(batch, singles, rtol=1e-9)
