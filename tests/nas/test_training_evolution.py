"""Progressive-shrinking training, the dataset, and evolutionary search."""

import numpy as np
import pytest

from repro.devices import desktop_gtx1080, rpi4
from repro.nas import (EvolutionConfig, MBV3_SPACE, Supernet,
                       SupernetTrainer, SyntheticImageDataset, TrainConfig,
                       downsample, evaluate_arch, evolutionary_search,
                       max_arch, min_arch, partition_aware_forward,
                       tiny_space)
from repro.netsim import Cluster, NetworkCondition
from repro.partition import Grid


SPACE = tiny_space()


class TestDataset:
    def test_deterministic(self):
        a = SyntheticImageDataset(seed=5, train_size=32, val_size=16)
        b = SyntheticImageDataset(seed=5, train_size=32, val_size=16)
        np.testing.assert_allclose(a.x_train, b.x_train)

    def test_split_sizes(self):
        ds = SyntheticImageDataset(train_size=40, val_size=24)
        assert ds.x_train.shape == (40, 3, 32, 32)
        assert ds.x_val.shape == (24, 3, 32, 32)

    def test_downsample(self):
        x = np.arange(64, dtype=float).reshape(1, 1, 8, 8)
        d = downsample(x, 4)
        assert d.shape == (1, 1, 4, 4)
        assert d[0, 0, 0, 0] == pytest.approx((0 + 1 + 8 + 9) / 4)

    def test_downsample_must_divide(self):
        with pytest.raises(ValueError):
            downsample(np.zeros((1, 1, 8, 8)), 3)

    def test_batches_cover_epoch(self):
        ds = SyntheticImageDataset(train_size=64, val_size=8)
        rng = np.random.default_rng(0)
        n = sum(x.shape[0] for x, _ in ds.batches(16, rng))
        assert n == 64

    def test_labels_in_range(self):
        ds = SyntheticImageDataset(num_classes=7, train_size=50, val_size=10)
        assert ds.y_train.min() >= 0 and ds.y_train.max() < 7

    def test_classes_are_separable(self):
        """Same-class images correlate more than cross-class ones."""
        ds = SyntheticImageDataset(train_size=200, val_size=10, noise=0.3,
                                   seed=2)
        x = ds.x_train.reshape(200, -1)
        y = ds.y_train
        cls = y[0]
        same = [i for i in range(1, 200) if y[i] == cls][:10]
        diff = [i for i in range(1, 200) if y[i] != cls][:10]
        corr_same = np.mean([np.dot(x[0], x[i]) for i in same])
        corr_diff = np.mean([np.dot(x[0], x[i]) for i in diff])
        assert corr_same > corr_diff


class TestTrainer:
    @pytest.fixture(scope="class")
    def trained(self):
        net = Supernet(SPACE, seed=0)
        ds = SyntheticImageDataset(resolution=32, train_size=96, val_size=64,
                                   seed=0, noise=0.4)
        cfg = TrainConfig(warmup_steps=25, steps_per_phase=15, batch_size=16,
                          lr=0.1, partition_prob=0.2, quantize_prob=0.2)
        trainer = SupernetTrainer(net, ds, cfg)
        result = trainer.train()
        return net, ds, result

    def test_warmup_loss_decreases(self, trained):
        """Compare within the warmup phase: later phases sample random
        submodels, whose losses are not comparable step to step."""
        _, _, result = trained
        warm = [l for p, l in zip(result.phase_names, result.losses)
                if p == "warmup"]
        assert np.mean(warm[-5:]) < np.mean(warm[:5])

    def test_phases_recorded_in_order(self, trained):
        _, _, result = trained
        phases = list(dict.fromkeys(result.phase_names))
        assert phases == ["warmup", "kernel", "depth", "expand"]

    def test_max_beats_chance(self, trained):
        net, ds, result = trained
        assert result.val_accuracy["max"] > 100.0 / SPACE.num_classes + 5

    def test_min_submodel_functional(self, trained):
        net, ds, result = trained
        assert result.val_accuracy["min"] > 100.0 / SPACE.num_classes - 5

    def test_partition_aware_forward_close_to_plain(self, trained):
        """FDSP stem partitioning perturbs logits only mildly after
        partition-aware training."""
        net, ds, _ = trained
        net.eval()
        a = max_arch(SPACE)
        x, y = ds.val_batch(limit=32)
        plain = net.forward_arch(x, a)
        part = partition_aware_forward(net, x, a, Grid(1, 2))
        agree = (plain.argmax(1) == part.argmax(1)).mean()
        assert agree > 0.6
        net.train()

    def test_evaluate_arch_bounds(self, trained):
        net, ds, _ = trained
        acc = evaluate_arch(net, ds, max_arch(SPACE), limit=32)
        assert 0.0 <= acc <= 100.0


class TestEvolution:
    @pytest.fixture
    def cluster(self):
        return Cluster([rpi4(), desktop_gtx1080()],
                       NetworkCondition((200.0,), (20.0,)))

    def test_finds_feasible_under_loose_slo(self, cluster):
        res = evolutionary_search(
            MBV3_SPACE, cluster, latency_slo_s=1.0,
            config=EvolutionConfig(population=12, generations=3, seed=0))
        assert res.feasible
        assert res.latency_s <= 1.0
        assert res.accuracy > 70.0

    def test_respects_tight_slo(self, cluster):
        res = evolutionary_search(
            MBV3_SPACE, cluster, latency_slo_s=0.08,
            config=EvolutionConfig(population=12, generations=4, seed=1))
        if res.feasible:
            assert res.latency_s <= 0.08

    def test_tighter_slo_not_higher_accuracy(self, cluster):
        cfg = EvolutionConfig(population=16, generations=4, seed=2)
        loose = evolutionary_search(MBV3_SPACE, cluster, 1.0, config=cfg)
        tight = evolutionary_search(MBV3_SPACE, cluster, 0.12, config=cfg)
        if loose.feasible and tight.feasible:
            assert tight.accuracy <= loose.accuracy + 0.3

    def test_counts_evaluations(self, cluster):
        res = evolutionary_search(
            MBV3_SPACE, cluster, 0.5,
            config=EvolutionConfig(population=8, generations=2, seed=3))
        assert res.evaluations >= 8 * 2
