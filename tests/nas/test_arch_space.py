"""Search space and architecture configs (with hypothesis properties)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nas import (MBV3_SPACE, ArchConfig, crossover_arch, max_arch,
                       min_arch, mutate_arch, random_arch, tiny_space)
from repro.nas.search_space import SearchSpace, StageSpec


def arch_strategy(space=MBV3_SPACE):
    slots = space.num_stages * space.max_depth
    return st.builds(
        ArchConfig,
        resolution=st.sampled_from(space.resolution_options),
        depths=st.tuples(*[st.sampled_from(space.depth_options)
                           for _ in range(space.num_stages)]),
        kernels=st.tuples(*[st.sampled_from(space.kernel_options)
                            for _ in range(slots)]),
        expands=st.tuples(*[st.sampled_from(space.expand_options)
                            for _ in range(slots)]),
    )


class TestSearchSpace:
    def test_mbv3_dimensions(self):
        assert MBV3_SPACE.num_stages == 5
        assert MBV3_SPACE.max_depth == 4
        assert MBV3_SPACE.max_blocks == 20

    def test_submodel_count_is_huge(self):
        # The paper's OFA-style spaces have >1e9 submodels.
        assert MBV3_SPACE.num_submodels() > 1e9

    def test_empty_stages_rejected(self):
        with pytest.raises(ValueError):
            SearchSpace(stages=())

    def test_duplicate_options_rejected(self):
        with pytest.raises(ValueError):
            SearchSpace(stages=(StageSpec(16, 2, False, "relu"),),
                        kernel_options=(3, 3))

    def test_tiny_space_trains_fast(self):
        ts = tiny_space()
        assert ts.max_blocks <= 6
        assert max(ts.resolution_options) <= 32


class TestArchConfig:
    def test_max_min_valid(self):
        for a in (max_arch(MBV3_SPACE), min_arch(MBV3_SPACE)):
            a.validate(MBV3_SPACE)

    def test_max_bigger_than_min(self):
        mx, mn = max_arch(MBV3_SPACE), min_arch(MBV3_SPACE)
        assert mx.num_blocks() > mn.num_blocks()
        assert mx.resolution > mn.resolution

    def test_validate_rejects_bad_resolution(self):
        a = max_arch(MBV3_SPACE)
        bad = ArchConfig(999, a.depths, a.kernels, a.expands)
        with pytest.raises(ValueError):
            bad.validate(MBV3_SPACE)

    def test_validate_rejects_bad_depth(self):
        a = max_arch(MBV3_SPACE)
        bad = ArchConfig(a.resolution, (9,) * 5, a.kernels, a.expands)
        with pytest.raises(ValueError):
            bad.validate(MBV3_SPACE)

    def test_active_slots_respects_depth(self):
        a = min_arch(MBV3_SPACE)
        slots = a.active_slots(MBV3_SPACE)
        assert len(slots) == a.num_blocks()
        assert all(s % MBV3_SPACE.max_depth < 2 for s in slots)

    def test_encoding_length(self):
        a = max_arch(MBV3_SPACE)
        enc = a.encode(MBV3_SPACE)
        assert enc.shape == (ArchConfig.encoding_length(MBV3_SPACE),)

    @given(arch_strategy())
    @settings(max_examples=40, deadline=None)
    def test_encoding_bounded(self, arch):
        enc = arch.encode(MBV3_SPACE)
        assert (enc >= 0).all() and (enc <= 1).all()

    @given(arch_strategy())
    @settings(max_examples=40, deadline=None)
    def test_canonical_key_ignores_inactive_slots(self, arch):
        """Perturbing an inactive slot must not change identity."""
        space = MBV3_SPACE
        active = set(arch.active_slots(space))
        inactive = [i for i in range(space.num_stages * space.max_depth)
                    if i not in active]
        if not inactive:
            return
        kernels = list(arch.kernels)
        kernels[inactive[0]] = (7 if kernels[inactive[0]] != 7 else 3)
        other = ArchConfig(arch.resolution, arch.depths, tuple(kernels),
                           arch.expands)
        assert arch.canonical_key(space) == other.canonical_key(space)

    @given(arch_strategy(), st.integers(0, 10 ** 6))
    @settings(max_examples=40, deadline=None)
    def test_mutation_stays_in_space(self, arch, seed):
        rng = np.random.default_rng(seed)
        m = mutate_arch(arch, MBV3_SPACE, rate=0.5, rng=rng)
        m.validate(MBV3_SPACE)

    @given(arch_strategy(), arch_strategy(), st.integers(0, 10 ** 6))
    @settings(max_examples=40, deadline=None)
    def test_crossover_stays_in_space(self, a, b, seed):
        rng = np.random.default_rng(seed)
        c = crossover_arch(a, b, rng=rng)
        c.validate(MBV3_SPACE)

    def test_random_arch_deterministic_per_seed(self):
        a = random_arch(MBV3_SPACE, np.random.default_rng(5))
        b = random_arch(MBV3_SPACE, np.random.default_rng(5))
        assert a == b
