"""Plan refinement by coordinate descent."""

import pytest

from repro.devices import desktop_gtx1080, rpi4
from repro.models import get_model
from repro.netsim import Cluster, NetworkCondition
from repro.partition import (Grid, layerwise_split_plan, refine_plan,
                             simulate_latency, single_device_plan,
                             spatial_plan)
from repro.partition.optimize import block_candidates


@pytest.fixture(scope="module")
def augmented():
    return Cluster([rpi4(), desktop_gtx1080()],
                   NetworkCondition((300.0,), (10.0,)))


@pytest.fixture(scope="module")
def swarm():
    return Cluster([rpi4() for _ in range(5)],
                   NetworkCondition((500.0,) * 4, (5.0,) * 4))


class TestBlockCandidates:
    def test_fused_blocks_stay_unpartitioned(self):
        g = get_model("mobilenet_v3_large")
        head = g.blocks[-1]
        cands = block_candidates(head, num_devices=5)
        assert all(c.grid.ntiles == 1 for c in cands)

    def test_trunk_blocks_offer_grids(self):
        g = get_model("mobilenet_v3_large")
        cands = block_candidates(g.blocks[3], num_devices=5)
        assert any(c.grid == Grid(2, 2) for c in cands)
        assert any(c.bits == 8 for c in cands)


class TestRefinePlan:
    def test_never_worse(self, augmented):
        g = get_model("resnet50")
        for start in (single_device_plan(g),
                      layerwise_split_plan(g, len(g) // 2)):
            base = simulate_latency(g, start, augmented).total_s
            refined, value = refine_plan(g, start, augmented, max_passes=1)
            assert value <= base + 1e-12
            refined.validate_for(g, augmented.num_devices)

    def test_improves_bad_starting_point(self, augmented):
        """From all-local on the Pi, refinement must discover the GPU."""
        g = get_model("resnet50")
        start = single_device_plan(g, 0)
        base = simulate_latency(g, start, augmented).total_s
        refined, value = refine_plan(g, start, augmented)
        assert value < base / 3
        assert 1 in refined.devices_used()

    def test_matches_simulator(self, swarm):
        g = get_model("mobilenet_v3_large")
        refined, value = refine_plan(
            g, spatial_plan(g, Grid(2, 2), [1, 2, 3, 4]), swarm,
            max_passes=1)
        assert value == pytest.approx(
            simulate_latency(g, refined, swarm).total_s)

    def test_custom_objective(self, swarm):
        """An energy-weighted objective pulls toward fewer devices."""
        from repro.devices import energy_of_report
        from repro.partition import simulate_latency as sim

        g = get_model("mobilenet_v3_large")

        def energy_obj(plan):
            rep = sim(g, plan, swarm)
            return energy_of_report(rep, swarm.devices).total_j

        start = spatial_plan(g, Grid(2, 2), [1, 2, 3, 4])
        base = energy_obj(start)
        refined, value = refine_plan(g, start, swarm, max_passes=1,
                                     objective=energy_obj)
        assert value <= base + 1e-12
        assert len(refined.devices_used()) <= len(start.devices_used())
