"""Distributed-latency simulator: hand-checked cases + invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.devices import desktop_gtx1080, graph_time, rpi4
from repro.models import ModelGraph, get_model
from repro.models.graph import ComputeBlock
from repro.netsim import Cluster, NetworkCondition
from repro.partition import (Grid, layerwise_split_plan, simulate_latency,
                             single_device_plan, spatial_plan)


def tiny_graph():
    """Two compute blocks + head, hand-computable."""
    return ModelGraph("tiny", [
        ComputeBlock("b0", flops=1e8, out_hw=(16, 16), out_ch=8),
        ComputeBlock("b1", flops=1e8, out_hw=(8, 8), out_ch=16),
        ComputeBlock("head", flops=1e6, out_hw=(1, 1), out_ch=10,
                     partitionable=False, fused=True),
    ], accuracy=70.0, input_hw=(32, 32))


@pytest.fixture
def two_pis():
    return Cluster([rpi4(), rpi4()], NetworkCondition((100.0,), (10.0,)))


class TestSingleDevice:
    def test_matches_graph_time(self, two_pis):
        g = tiny_graph()
        rep = simulate_latency(g, single_device_plan(g), two_pis)
        assert rep.total_s == pytest.approx(graph_time(g, rpi4()), rel=1e-6)
        assert rep.comm_bytes == 0
        assert rep.num_transfers == 0

    def test_compute_attributed_to_device(self, two_pis):
        g = tiny_graph()
        rep = simulate_latency(g, single_device_plan(g), two_pis)
        assert rep.compute_s[0] > 0
        assert rep.compute_s[1] == 0

    def test_per_block_done_monotone(self, two_pis):
        g = get_model("mobilenet_v3_large")
        rep = simulate_latency(g, single_device_plan(g), two_pis)
        assert rep.per_block_done == sorted(rep.per_block_done)


class TestLayerwise:
    def test_all_remote_pays_input_transfer(self, two_pis):
        g = tiny_graph()
        rep = simulate_latency(g, layerwise_split_plan(g, 0), two_pis)
        # input (32*32*3 fp32) to remote + compute + result back
        assert rep.num_transfers == 2
        input_wire = two_pis.link_to(1).transfer_time(32 * 32 * 3 * 4 + 32)
        assert rep.total_s > input_wire

    def test_result_return_skips_netem_delay(self, two_pis):
        """The logits response crosses the unshaped direction: raising
        the delay must cost one delay, not two."""
        g = tiny_graph()
        lo = simulate_latency(g, layerwise_split_plan(g, 0), two_pis).total_s
        hi_cluster = Cluster([rpi4(), rpi4()],
                             NetworkCondition((100.0,), (110.0,)))
        hi = simulate_latency(g, layerwise_split_plan(g, 0),
                              hi_cluster).total_s
        assert hi - lo == pytest.approx(0.100, abs=0.01)

    def test_split_extremes_bracket(self, two_pis):
        g = get_model("mobilenet_v3_large")
        lats = [simulate_latency(g, layerwise_split_plan(g, s), two_pis).total_s
                for s in (0, len(g) // 2, len(g))]
        # all-local equals single device exactly
        assert lats[2] == pytest.approx(graph_time(g, rpi4()), rel=1e-6)

    def test_gpu_remote_offload_wins_for_big_model(self):
        """ResNet50: Pi-local is seconds, shipping to the GPU is not."""
        cl = Cluster([rpi4(), desktop_gtx1080()],
                     NetworkCondition((400.0,), (5.0,)))
        g = get_model("resnet50")
        local = simulate_latency(g, single_device_plan(g), cl).total_s
        remote = simulate_latency(g, layerwise_split_plan(g, 0), cl).total_s
        assert remote < local / 5


class TestSpatial:
    def test_parallel_speedup(self):
        cl = Cluster([rpi4()] * 5, NetworkCondition((1000.0,) * 4, (2.0,) * 4))
        g = get_model("resnet50")
        single = simulate_latency(g, single_device_plan(g), cl).total_s
        quad = simulate_latency(
            g, spatial_plan(g, Grid(2, 2), [0, 1, 2, 3]), cl).total_s
        assert quad < single / 1.5

    def test_compute_spread_across_devices(self):
        cl = Cluster([rpi4()] * 5, NetworkCondition((1000.0,) * 4, (2.0,) * 4))
        g = get_model("mobilenet_v3_large")
        rep = simulate_latency(g, spatial_plan(g, Grid(2, 2), [1, 2, 3, 4]), cl)
        busy = [rep.compute_s[d] for d in (1, 2, 3, 4)]
        assert min(busy) > 0
        assert max(busy) < 1.5 * min(busy)  # homogeneous tiles

    def test_fdsp_overhead_charged(self):
        """Total compute across tiles exceeds the unpartitioned compute."""
        cl = Cluster([rpi4()] * 5, NetworkCondition((1000.0,) * 4, (2.0,) * 4))
        g = get_model("resnet50")
        rep1 = simulate_latency(g, single_device_plan(g), cl)
        rep4 = simulate_latency(g, spatial_plan(g, Grid(2, 2), [1, 2, 3, 4]),
                                cl)
        assert sum(rep4.compute_s.values()) > sum(rep1.compute_s.values())


class TestInvariants:
    @given(st.floats(20, 400), st.floats(1, 100))
    @settings(max_examples=25, deadline=None)
    def test_more_bandwidth_never_hurts(self, bw, delay):
        g = get_model("mobilenet_v3_large")
        plan = layerwise_split_plan(g, 0)
        base = simulate_latency(g, plan, Cluster(
            [rpi4(), desktop_gtx1080()],
            NetworkCondition((bw,), (delay,)))).total_s
        better = simulate_latency(g, plan, Cluster(
            [rpi4(), desktop_gtx1080()],
            NetworkCondition((bw * 2,), (delay,)))).total_s
        assert better <= base + 1e-12

    @given(st.floats(20, 400), st.floats(1, 100))
    @settings(max_examples=25, deadline=None)
    def test_more_delay_never_helps(self, bw, delay):
        g = get_model("mobilenet_v3_large")
        plan = layerwise_split_plan(g, 0)
        base = simulate_latency(g, plan, Cluster(
            [rpi4(), desktop_gtx1080()],
            NetworkCondition((bw,), (delay,)))).total_s
        worse = simulate_latency(g, plan, Cluster(
            [rpi4(), desktop_gtx1080()],
            NetworkCondition((bw,), (delay * 2,)))).total_s
        assert worse >= base - 1e-12

    def test_quantized_transfers_cheaper(self, two_pis):
        g = get_model("mobilenet_v3_large")
        fp32 = simulate_latency(g, layerwise_split_plan(g, 0, bits=32),
                                two_pis)
        int8 = simulate_latency(g, layerwise_split_plan(g, 0, bits=8),
                                two_pis)
        assert int8.comm_bytes < fp32.comm_bytes
        assert int8.total_s <= fp32.total_s

    def test_report_totals_consistent(self, two_pis):
        g = tiny_graph()
        rep = simulate_latency(g, layerwise_split_plan(g, 1), two_pis)
        assert rep.total_ms == pytest.approx(rep.total_s * 1e3)
        assert rep.total_s >= max(rep.compute_s.values())
