"""Execution plans: constructors and validation."""

import pytest

from repro.models import get_model
from repro.partition import (BlockPlan, ExecutionPlan, Grid,
                             layerwise_split_plan, single_device_plan,
                             spatial_front_plan, spatial_plan)
from repro.partition.plan import greedy_spatial_plan


@pytest.fixture(scope="module")
def graph():
    return get_model("mobilenet_v3_large")


class TestBlockPlan:
    def test_device_count_must_match_grid(self):
        with pytest.raises(ValueError):
            BlockPlan(Grid(2, 2), (0, 1))

    def test_invalid_bits(self):
        with pytest.raises(ValueError):
            BlockPlan(Grid(1, 1), (0,), bits=12)

    def test_negative_device(self):
        with pytest.raises(ValueError):
            BlockPlan(Grid(1, 1), (-1,))

    def test_device_set_sorted_unique(self):
        bp = BlockPlan(Grid(2, 2), (3, 1, 3, 0))
        assert bp.device_set == (0, 1, 3)


class TestExecutionPlanValidation:
    def test_empty_plan(self):
        with pytest.raises(ValueError):
            ExecutionPlan([])

    def test_length_mismatch(self, graph):
        plan = ExecutionPlan([BlockPlan(Grid(1, 1), (0,))])
        with pytest.raises(ValueError, match="entries"):
            plan.validate_for(graph, 2)

    def test_fused_block_must_be_unpartitioned(self, graph):
        plans = [BlockPlan(Grid(1, 1), (0,)) for _ in graph]
        plans[-1] = BlockPlan(Grid(1, 2), (0, 1))  # head.fc is fused
        with pytest.raises(ValueError, match="fused"):
            ExecutionPlan(plans).validate_for(graph, 2)

    def test_device_out_of_range(self, graph):
        plans = [BlockPlan(Grid(1, 1), (5,)) for _ in graph]
        with pytest.raises(ValueError, match="device 5"):
            ExecutionPlan(plans).validate_for(graph, 2)

    def test_output_device_out_of_range(self, graph):
        plans = [BlockPlan(Grid(1, 1), (0,)) for _ in graph]
        with pytest.raises(ValueError, match="output device"):
            ExecutionPlan(plans, output_device=9).validate_for(graph, 2)


class TestConstructors:
    def test_single_device(self, graph):
        plan = single_device_plan(graph, 0)
        plan.validate_for(graph, 1)
        assert plan.devices_used() == (0,)

    def test_layerwise_split(self, graph):
        plan = layerwise_split_plan(graph, 5, remote=1)
        plan.validate_for(graph, 2)
        assert all(bp.devices == (0,) for bp in plan.block_plans[:5])
        assert all(bp.devices == (1,) for bp in plan.block_plans[5:])

    def test_layerwise_split_bounds(self, graph):
        with pytest.raises(ValueError):
            layerwise_split_plan(graph, len(graph) + 1)
        # 0 and len(graph) are both legal extremes
        layerwise_split_plan(graph, 0).validate_for(graph, 2)
        layerwise_split_plan(graph, len(graph)).validate_for(graph, 2)

    def test_spatial_plan_heads_on_aggregator(self, graph):
        plan = spatial_plan(graph, Grid(2, 2), [1, 2, 3, 4])
        plan.validate_for(graph, 5)
        assert plan.block_plans[-1].devices == (0,)
        assert plan.block_plans[2].grid == Grid(2, 2)

    def test_spatial_plan_device_count(self, graph):
        with pytest.raises(ValueError):
            spatial_plan(graph, Grid(2, 2), [1, 2])

    def test_spatial_front_only_large_maps(self, graph):
        plan = spatial_front_plan(graph, Grid(2, 2), [1, 2, 3, 4], min_hw=14)
        plan.validate_for(graph, 5)
        for bp, block in zip(plan.block_plans, graph):
            if bp.grid.ntiles > 1:
                assert min(block.out_hw) >= 14

    def test_greedy_plan_valid_and_mixed(self, graph):
        plan = greedy_spatial_plan(graph, list(range(5)))
        plan.validate_for(graph, 5)
        grids = {str(bp.grid) for bp in plan}
        assert len(grids) >= 2  # mixes at least two grid sizes

    def test_greedy_plan_respects_device_pool(self, graph):
        plan = greedy_spatial_plan(graph, [0, 1])
        plan.validate_for(graph, 2)
        assert all(max(bp.devices) <= 1 for bp in plan)
