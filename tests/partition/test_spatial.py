"""FDSP spatial tiling: split/merge round trips and overhead properties."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.partition import (GRIDS, Grid, fdsp_compute_overhead, merge_tiles,
                             split_tiles, tile_shape)


class TestGrid:
    def test_ntiles(self):
        assert Grid(2, 3).ntiles == 6

    def test_invalid(self):
        with pytest.raises(ValueError):
            Grid(0, 1)

    def test_search_space_grids(self):
        assert [str(g) for g in GRIDS] == ["1x1", "1x2", "2x2"]


class TestTileShape:
    def test_even_split(self):
        assert tile_shape(8, 8, Grid(2, 2), 0, 0) == (4, 4)

    def test_remainder_to_last(self):
        assert tile_shape(9, 9, Grid(2, 2), 0, 0) == (4, 4)
        assert tile_shape(9, 9, Grid(2, 2), 1, 1) == (5, 5)

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            tile_shape(8, 8, Grid(2, 2), 2, 0)


class TestSplitMerge:
    @pytest.mark.parametrize("grid", [Grid(1, 1), Grid(1, 2), Grid(2, 2),
                                      Grid(2, 3)])
    def test_roundtrip_halo0(self, grid):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(2, 3, 12, 12))
        tiles = split_tiles(x, grid, halo=0)
        assert len(tiles) == grid.ntiles
        back = merge_tiles(tiles, grid, (12, 12), halo=0)
        np.testing.assert_allclose(back, x)

    def test_roundtrip_halo1(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(1, 2, 8, 8))
        grid = Grid(2, 2)
        tiles = split_tiles(x, grid, halo=1)
        # halo-padded tiles are larger on cut edges
        assert tiles[0].shape == (1, 2, 5, 5)
        back = merge_tiles(tiles, grid, (8, 8), halo=1)
        np.testing.assert_allclose(back, x)

    def test_halo_is_zero_padding(self):
        x = np.ones((1, 1, 4, 4))
        tiles = split_tiles(x, Grid(1, 2), halo=1)
        # right tile's left column is the zero halo
        assert (tiles[1][:, :, :, 0] == 0).all()
        assert (tiles[1][:, :, :, 1:] == 1).all()

    def test_merge_wrong_count(self):
        with pytest.raises(ValueError):
            merge_tiles([np.zeros((1, 1, 2, 2))], Grid(1, 2), (2, 4))

    @given(st.sampled_from([(1, 2), (2, 1), (2, 2)]),
           st.integers(2, 5).map(lambda k: 2 * k))
    @settings(max_examples=30, deadline=None)
    def test_roundtrip_property(self, rc, size):
        grid = Grid(*rc)
        rng = np.random.default_rng(size)
        x = rng.normal(size=(1, 2, size, size))
        back = merge_tiles(split_tiles(x, grid, halo=0), grid, (size, size),
                           halo=0)
        np.testing.assert_allclose(back, x)


class TestFdspOverhead:
    def test_unpartitioned_no_overhead(self):
        assert fdsp_compute_overhead((14, 14), Grid(1, 1)) == 1.0

    def test_overhead_above_one(self):
        assert fdsp_compute_overhead((14, 14), Grid(2, 2)) > 1.0

    def test_smaller_fmap_more_overhead(self):
        small = fdsp_compute_overhead((7, 7), Grid(2, 2))
        large = fdsp_compute_overhead((56, 56), Grid(2, 2))
        assert small > large

    def test_larger_halo_more_overhead(self):
        h1 = fdsp_compute_overhead((14, 14), Grid(2, 2), halo=1)
        h3 = fdsp_compute_overhead((14, 14), Grid(2, 2), halo=3)
        assert h3 > h1

    @given(st.integers(4, 64), st.sampled_from([(1, 2), (2, 2), (3, 3)]),
           st.integers(1, 3))
    @settings(max_examples=60, deadline=None)
    def test_bounds_property(self, hw, rc, halo):
        f = fdsp_compute_overhead((hw, hw), Grid(*rc), halo=halo)
        assert 1.0 <= f
        # overhead never exceeds the fully-padded worst case
        th = max(1, hw // rc[0])
        tw = max(1, hw // rc[1])
        assert f <= ((th + 2 * halo) * (tw + 2 * halo)) / (th * tw) + 1e-12
