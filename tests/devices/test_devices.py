"""Device profiles and latency models, including the calibration anchors
the figures depend on."""

import pytest

from repro.devices import (DEVICE_CATALOG, block_time, desktop_gtx1080,
                           get_device, graph_time, model_switch_time, rpi4,
                           supernet_reconfig_time)
from repro.models import get_model
from repro.models.graph import ComputeBlock


class TestProfiles:
    def test_catalog_complete(self):
        for name in ("rpi4", "desktop_gtx1080", "jetson_class"):
            assert name in DEVICE_CATALOG
            assert get_device(name).name == name

    def test_unknown_device(self):
        with pytest.raises(KeyError):
            get_device("tpu_v5")

    def test_compute_time_roofline(self):
        dev = rpi4()
        # Compute-bound: memory term smaller.
        t1 = dev.compute_time(flops=dev.effective_flops, mem_bytes=0)
        assert t1 == pytest.approx(1.0 + dev.block_overhead_s)
        # Memory-bound: huge traffic dominates.
        t2 = dev.compute_time(flops=1.0, mem_bytes=dev.mem_bandwidth)
        assert t2 == pytest.approx(1.0 + dev.block_overhead_s)

    def test_gpu_faster_than_pi(self):
        g = get_model("resnet50")
        assert graph_time(g, desktop_gtx1080()) < graph_time(g, rpi4()) / 10


class TestCalibrationAnchors:
    """These anchors drive the figure shapes; see DESIGN.md."""

    def test_mbv3_on_pi_hundreds_of_ms(self):
        t = graph_time(get_model("mobilenet_v3_large"), rpi4())
        assert 0.3 < t < 0.7

    def test_mbv3_on_gpu_single_digit_ms(self):
        t = graph_time(get_model("mobilenet_v3_large"), desktop_gtx1080())
        assert t < 0.02

    def test_densenet_gpu_exceeds_140ms_slo(self):
        """Fig. 13a: Neurosurgeon+DenseNet161 can never meet 140 ms."""
        assert graph_time(get_model("densenet161"), desktop_gtx1080()) > 0.140

    def test_inception_gpu_under_140ms(self):
        """Fig. 16a: Neurosurgeon+Inception meets 140 ms at good corners."""
        assert graph_time(get_model("inception_v3"), desktop_gtx1080()) < 0.130

    def test_resnext_slowest(self):
        times = {n: graph_time(get_model(n), desktop_gtx1080())
                 for n in ("resnet50", "densenet161", "resnext101_32x8d")}
        assert times["resnext101_32x8d"] == max(times.values())


class TestBlockTime:
    def test_flop_scale(self):
        b = ComputeBlock("b", 1e9, (8, 8), 16)
        dev = rpi4()
        half = block_time(b, dev, flop_scale=0.5)
        full = block_time(b, dev, flop_scale=1.0)
        assert half < full

    def test_graph_time_sums_blocks(self):
        g = get_model("mobilenet_v3_large")
        dev = rpi4()
        total = graph_time(g, dev)
        assert total > block_time(g.blocks[0], dev)


class TestModelSwitch:
    def test_supernet_reconfig_millisecond_scale(self):
        t = supernet_reconfig_time(25, rpi4())
        assert 1e-3 < t < 50e-3

    def test_reload_much_slower_than_reconfig(self):
        """Fig. 19: reloading any fixed model is orders of magnitude
        slower than in-memory supernet reconfiguration."""
        pi = rpi4()
        reconf = supernet_reconfig_time(25, pi)
        for name in ("mobilenet_v3_large", "resnext101_32x8d"):
            reload_t = model_switch_time(get_model(name), pi, in_memory=False)
            assert reload_t > 20 * reconf

    def test_reload_scales_with_weights(self):
        pi = rpi4()
        small = model_switch_time(get_model("mobilenet_v3_large"), pi)
        big = model_switch_time(get_model("resnext101_32x8d"), pi)
        assert big > 3 * small

    def test_in_memory_flag(self):
        g = get_model("mobilenet_v3_large")
        pi = rpi4()
        assert model_switch_time(g, pi, in_memory=True) < model_switch_time(
            g, pi, in_memory=False)
