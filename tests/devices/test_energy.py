"""Energy accounting extension."""

import pytest

from repro.devices import (ENERGY_CATALOG, EnergyProfile, desktop_gtx1080,
                           energy_of_report, rpi4)
from repro.models import get_model
from repro.netsim import Cluster, NetworkCondition
from repro.partition import (Grid, layerwise_split_plan, simulate_latency,
                             single_device_plan, spatial_plan)


@pytest.fixture(scope="module")
def swarm():
    return Cluster([rpi4() for _ in range(5)],
                   NetworkCondition((500.0,) * 4, (5.0,) * 4))


class TestEnergyProfile:
    def test_compute_energy_components(self):
        ep = EnergyProfile(idle_w=2.0, active_w=6.0, tx_nj_per_byte=100.0,
                           rx_nj_per_byte=50.0)
        # 1 s makespan, 0.5 s busy: 2*1 + 4*0.5 = 4 J
        assert ep.compute_energy(0.5, 1.0) == pytest.approx(4.0)

    def test_busy_clamped_to_makespan(self):
        ep = EnergyProfile(2.0, 6.0, 0.0, 0.0)
        assert ep.compute_energy(5.0, 1.0) == ep.compute_energy(1.0, 1.0)

    def test_network_energy(self):
        ep = EnergyProfile(0.0, 0.0, tx_nj_per_byte=100.0,
                           rx_nj_per_byte=50.0)
        assert ep.network_energy(1e9, 0) == pytest.approx(100.0)

    def test_catalog_covers_devices(self):
        for name in ("rpi4", "desktop_gtx1080", "jetson_class"):
            assert name in ENERGY_CATALOG


class TestEnergyOfReport:
    def test_single_device_charges_one_device(self, swarm):
        g = get_model("mobilenet_v3_large")
        rep = simulate_latency(g, single_device_plan(g), swarm)
        er = energy_of_report(rep, swarm.devices)
        assert set(er.per_device_j) == {0}
        assert er.network_j == 0.0
        assert er.total_j > 0

    def test_partitioning_trades_energy_for_latency(self, swarm):
        """Spatial partitioning cuts latency but costs more total energy
        (FDSP redundant compute + more idle-active devices + radio)."""
        g = get_model("resnet50")
        rep1 = simulate_latency(g, single_device_plan(g), swarm)
        rep4 = simulate_latency(g, spatial_plan(g, Grid(2, 2), [0, 1, 2, 3]),
                                swarm)
        e1 = energy_of_report(rep1, swarm.devices)
        e4 = energy_of_report(rep4, swarm.devices)
        assert rep4.total_s < rep1.total_s
        assert e4.total_j > e1.total_j * 0.9  # no free lunch
        assert len(e4.per_device_j) == 4

    def test_quantization_cuts_network_energy(self, swarm):
        g = get_model("mobilenet_v3_large")
        p32 = layerwise_split_plan(g, 0, bits=32)
        p8 = layerwise_split_plan(g, 0, bits=8)
        e32 = energy_of_report(simulate_latency(g, p32, swarm), swarm.devices)
        e8 = energy_of_report(simulate_latency(g, p8, swarm), swarm.devices)
        assert e8.network_j < e32.network_j / 2

    def test_gpu_offload_energy_on_gpu(self):
        cl = Cluster([rpi4(), desktop_gtx1080()],
                     NetworkCondition((400.0,), (5.0,)))
        g = get_model("resnet50")
        rep = simulate_latency(g, layerwise_split_plan(g, 0), cl)
        er = energy_of_report(rep, cl.devices)
        # the 220 W desktop dominates the energy bill
        assert er.per_device_j[1] > er.per_device_j[0]
