"""Shared fixtures."""

import numpy as np
import pytest

from repro.devices import desktop_gtx1080, rpi4
from repro.nas import MBV3_SPACE, SyntheticImageDataset, Supernet, tiny_space
from repro.netsim import Cluster, NetworkCondition


@pytest.fixture
def rng():
    return np.random.default_rng(0)


@pytest.fixture(scope="session")
def space():
    return MBV3_SPACE


@pytest.fixture(scope="session")
def tspace():
    return tiny_space()


@pytest.fixture(scope="session")
def tiny_net(tspace):
    return Supernet(tspace, seed=7)


@pytest.fixture(scope="session")
def tiny_dataset():
    return SyntheticImageDataset(resolution=32, train_size=96, val_size=64,
                                 seed=3)


@pytest.fixture
def augmented_cluster():
    return Cluster([rpi4(), desktop_gtx1080()],
                   NetworkCondition((200.0,), (20.0,)))


@pytest.fixture
def swarm_cluster_5():
    return Cluster([rpi4() for _ in range(5)],
                   NetworkCondition((100.0,) * 4, (20.0,) * 4))


def numeric_grad(f, x, eps=1e-6):
    """Central-difference gradient of scalar f at array x."""
    g = np.zeros_like(x)
    flat = x.reshape(-1)
    gf = g.reshape(-1)
    for i in range(flat.size):
        old = flat[i]
        flat[i] = old + eps
        fp = f()
        flat[i] = old - eps
        fm = f()
        flat[i] = old
        gf[i] = (fp - fm) / (2 * eps)
    return g
