"""End-to-end observability: every fault event, retry, failover and
circuit transition taken during a chaotic serving run must surface in
the telemetry registry.

This run uses the paper-scale space, which exercises the plan-only
fault ladder (injector, health, facade and server counters); the
transport/executor counters on the executable path are asserted in
``test_transport_faults.py``."""

import pytest

from repro.core import SLO, Murmuration, SearchDecisionEngine
from repro.devices import desktop_gtx1080, jetson_class, rpi4
from repro.faults import DeviceCrash, FaultInjector, FaultSchedule
from repro.nas import MBV3_SPACE
from repro.netsim import NetworkCondition
from repro.runtime import InferenceServer
from repro.telemetry import Telemetry


@pytest.fixture(scope="module")
def chaotic_run():
    tel = Telemetry()
    devices = [rpi4(), desktop_gtx1080(), jetson_class()]
    schedule = FaultSchedule([DeviceCrash(1.0, 4.0, device=1)])
    system = Murmuration(
        MBV3_SPACE, devices,
        NetworkCondition((80.0, 60.0), (20.0, 30.0)),
        SearchDecisionEngine(MBV3_SPACE, devices, n_random_archs=4),
        slo=SLO.latency_ms(400.0), use_predictor=False,
        monitor_noise=0.0, seed=0,
        faults=FaultInjector(schedule, seed=0, telemetry=tel),
        telemetry=tel)
    server = InferenceServer(system, arrival_rate_hz=5.0, seed=1,
                             telemetry=tel)
    stats = server.run(num_requests=25)
    return tel, stats


def _val(tel, name, **labels):
    metric = tel.registry.get(name, **labels)
    return 0.0 if metric is None else metric.value


class TestFaultObservability:
    def test_run_actually_hit_faults(self, chaotic_run):
        _, stats = chaotic_run
        assert any(r.outcome != "ok" for r in stats.records)
        assert stats.completion_rate == 1.0  # resilient runtime survives

    def test_injector_exports_events(self, chaotic_run):
        tel, _ = chaotic_run
        assert _val(tel, "faults_events_total", kind="crash") == 1.0
        # device 1 was down at some point and is back up at the end
        assert _val(tel, "faults_device_up", device="1") == 1.0

    def test_health_exports_circuit_activity(self, chaotic_run):
        tel, _ = chaotic_run
        assert _val(tel, "health_failures_total") > 0
        assert _val(tel, "health_successes_total") > 0

    def test_facade_exports_outcomes(self, chaotic_run):
        tel, stats = chaotic_run
        total_failovers = sum(r.failovers for r in stats.records)
        assert total_failovers > 0
        assert _val(tel, "core_failovers_total") == total_failovers
        assert _val(tel, "core_retries_total") == \
            sum(r.retries for r in stats.records)

    def test_server_exports_outcome_counters(self, chaotic_run):
        tel, stats = chaotic_run
        for outcome, count in stats.outcome_counts().items():
            if count:
                assert _val(tel, "server_outcomes_total",
                            outcome=outcome) == count
