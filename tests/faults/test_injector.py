"""The injector: deterministic world perturbation + ground-truth queries."""

import pytest

from repro.devices import rpi4
from repro.faults import (DeviceCrash, FaultInjector, FaultSchedule,
                          LinkDegradation, MessageLoss, Straggler)
from repro.netsim import Cluster, NetworkCondition
from repro.telemetry import Telemetry


def _sched():
    return FaultSchedule([
        DeviceCrash(1.0, 2.0, device=1),
        Straggler(1.0, 3.0, device=2, slowdown=2.0),
        LinkDegradation(1.0, 2.0, device=2, bw_factor=0.5),
    ])


class TestAdvance:
    def test_returns_newly_active_events(self):
        inj = FaultInjector(_sched())
        assert inj.advance(0.5) == []
        started = inj.advance(1.5)
        assert {e.kind for e in started} == {"crash", "straggler",
                                             "degradation"}
        assert inj.advance(1.7) == []  # still active, not new
        assert inj.advance(2.5) == []  # crash+degradation ended

    def test_ground_truth_queries(self):
        inj = FaultInjector(_sched())
        inj.advance(1.5)
        assert inj.is_down(1)
        assert not inj.is_down(2)
        assert not inj.reachable(0, 1)
        assert inj.reachable(0, 2)
        assert inj.compute_scale() == {2: 2.0}
        inj.advance(2.5)
        assert not inj.is_down(1)


class TestApplyTo:
    def test_applies_degradation_and_scale(self):
        base = NetworkCondition((100.0, 100.0), (10.0, 10.0))
        cluster = Cluster([rpi4()] * 3, base)
        inj = FaultInjector(_sched())
        inj.advance(1.5)
        inj.apply_to(cluster, base)
        assert cluster.condition.bandwidths_mbps == (100.0, 50.0)
        assert cluster.compute_scale == {2: 2.0}
        inj.advance(3.5)
        inj.apply_to(cluster, base)
        assert cluster.condition is base
        assert cluster.compute_scale == {}

    def test_idempotent_between_transitions(self):
        base = NetworkCondition((100.0, 100.0), (10.0, 10.0))
        cluster = Cluster([rpi4()] * 3, base)
        inj = FaultInjector(_sched())
        inj.advance(1.5)
        inj.apply_to(cluster, base)
        cond = cluster.condition
        inj.advance(1.6)
        inj.apply_to(cluster, base)
        assert cluster.condition is cond  # no rebuild: same active set

    def test_base_condition_change_reapplies(self):
        base = NetworkCondition((100.0, 100.0), (10.0, 10.0))
        cluster = Cluster([rpi4()] * 3, base)
        inj = FaultInjector(_sched())
        inj.advance(1.5)
        inj.apply_to(cluster, base)
        newer = NetworkCondition((40.0, 40.0), (10.0, 10.0))
        inj.apply_to(cluster, newer)
        assert cluster.condition.bandwidths_mbps == (40.0, 20.0)


class TestLossDraws:
    def test_deterministic_in_seed(self):
        sched = FaultSchedule([MessageLoss(0.0, 10.0, prob=0.5)])
        a = FaultInjector(sched, seed=3)
        b = FaultInjector(sched, seed=3)
        a.advance(1.0)
        b.advance(1.0)
        draws_a = [a.message_lost(0, 1) for _ in range(50)]
        draws_b = [b.message_lost(0, 1) for _ in range(50)]
        assert draws_a == draws_b
        assert any(draws_a) and not all(draws_a)

    def test_no_loss_means_no_draw(self):
        inj = FaultInjector(FaultSchedule([]))
        assert not inj.message_lost(0, 1)
        assert inj.loss_prob(0, 1) == 0.0


class TestInjectorTelemetry:
    def test_events_and_device_up_gauge(self):
        tel = Telemetry()
        inj = FaultInjector(_sched(), telemetry=tel)
        up = tel.registry.get("faults_device_up", device="1")
        assert up.value == 1.0
        inj.advance(1.5)
        assert tel.registry.get("faults_events_total", kind="crash").value == 1
        assert up.value == 0.0
        inj.advance(2.5)
        assert up.value == 1.0
