"""Retry policy arithmetic + the no-op guarantee.

The headline contract: constructing the runtime with ``faults=None``
(the default) or with an *empty* fault schedule must serve bit-identical
latencies, outcomes and decisions — fault support may cost nothing when
the world is healthy.
"""

import pytest

from repro.core import SLO, Murmuration, SearchDecisionEngine
from repro.devices import desktop_gtx1080, rpi4
from repro.faults import (FaultInjector, FaultSchedule, ResilienceConfig,
                          RetryPolicy)
from repro.nas import MBV3_SPACE
from repro.netsim import NetworkCondition
from repro.runtime import InferenceServer


class TestRetryPolicy:
    def test_backoff_schedule(self):
        p = RetryPolicy(timeout_s=0.05, max_retries=2, backoff=2.0)
        assert p.attempts == 3
        assert p.timeout_of(0) == pytest.approx(0.05)
        assert p.timeout_of(1) == pytest.approx(0.10)
        assert p.timeout_of(2) == pytest.approx(0.20)
        assert p.give_up_cost() == pytest.approx(0.35)

    def test_zero_retries_still_costs_one_timeout(self):
        p = RetryPolicy(timeout_s=0.1, max_retries=0)
        assert p.attempts == 1
        assert p.give_up_cost() == pytest.approx(0.1)

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(timeout_s=0.0)
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(backoff=0.5)


class TestResilienceConfig:
    def test_defaults(self):
        cfg = ResilienceConfig()
        assert cfg.failover and cfg.degradation
        assert cfg.failure_threshold == 3

    def test_validation(self):
        with pytest.raises(ValueError):
            ResilienceConfig(failure_threshold=0)
        with pytest.raises(ValueError):
            ResilienceConfig(cooldown_s=-0.1)


def _serve(faults):
    devices = [rpi4(), desktop_gtx1080()]
    system = Murmuration(
        MBV3_SPACE, devices, NetworkCondition((80.0,), (30.0,)),
        SearchDecisionEngine(MBV3_SPACE, devices, n_random_archs=2),
        slo=SLO.latency_ms(300.0), use_predictor=False,
        monitor_noise=0.02, seed=0, faults=faults)
    server = InferenceServer(system, arrival_rate_hz=5.0, seed=1)
    return server.run(num_requests=25)


class TestNoOpGuarantee:
    def test_empty_schedule_is_bit_identical_to_disabled(self):
        off = _serve(None)
        empty = _serve(FaultInjector(FaultSchedule([])))
        assert len(off.records) == len(empty.records)
        for a, b in zip(off.records, empty.records):
            assert a.arrival == b.arrival
            assert a.inference_s == b.inference_s  # bit-identical latency
            assert a.switch_s == b.switch_s
            assert a.satisfied == b.satisfied
            assert (a.outcome, a.retries, a.failovers) == ("ok", 0, 0)
            assert (b.outcome, b.retries, b.failovers) == ("ok", 0, 0)

    def test_disabled_runtime_has_no_fault_state(self):
        devices = [rpi4(), desktop_gtx1080()]
        system = Murmuration(
            MBV3_SPACE, devices, NetworkCondition((80.0,), (30.0,)),
            SearchDecisionEngine(MBV3_SPACE, devices, n_random_archs=2),
            slo=SLO.latency_ms(300.0))
        assert system.faults is None
        assert system.health is None
        assert system.resilience is None
        assert system.cluster.compute_scale == {}
