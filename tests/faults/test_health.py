"""The DeviceHealth circuit breaker: closed -> open -> half-open -> closed."""

import pytest

from repro.faults import CircuitState, DeviceHealth
from repro.telemetry import Telemetry


class TestBreakerTransitions:
    def test_opens_after_threshold_consecutive_failures(self):
        h = DeviceHealth(3, failure_threshold=3, cooldown_s=2.0)
        assert not h.record_failure(1, 0.0)
        assert not h.record_failure(1, 0.1)
        assert h.allow(1, 0.1)
        assert h.record_failure(1, 0.2)  # third: newly opened
        assert h.state(1, 0.2) is CircuitState.OPEN
        assert not h.allow(1, 0.3)

    def test_success_resets_consecutive_count(self):
        h = DeviceHealth(2, failure_threshold=2)
        h.record_failure(1, 0.0)
        h.record_success(1, 0.1)
        h.record_failure(1, 0.2)
        assert h.state(1, 0.2) is CircuitState.CLOSED

    def test_half_open_after_cooldown_then_close_on_success(self):
        h = DeviceHealth(2, failure_threshold=1, cooldown_s=2.0)
        h.record_failure(1, 0.0)
        assert not h.allow(1, 1.9)
        # cooldown expired: half-open admits a trial request
        assert h.allow(1, 2.0)
        assert h.state(1, 2.0) is CircuitState.HALF_OPEN
        h.record_success(1, 2.1)
        assert h.state(1, 2.1) is CircuitState.CLOSED

    def test_half_open_failure_reopens_immediately(self):
        h = DeviceHealth(2, failure_threshold=3, cooldown_s=1.0)
        for t in (0.0, 0.1, 0.2):
            h.record_failure(1, t)
        assert h.state(1, 1.3) is CircuitState.HALF_OPEN
        # one failed probe reopens regardless of the threshold
        assert h.record_failure(1, 1.4)
        assert h.state(1, 1.5) is CircuitState.OPEN
        # and the cooldown restarted from the reopen
        assert h.allow(1, 2.5)

    def test_gateway_is_always_allowed(self):
        h = DeviceHealth(2, failure_threshold=1)
        assert not h.record_failure(0, 0.0)
        assert h.allow(0, 0.1)
        assert h.state(0, 0.1) is CircuitState.CLOSED

    def test_validation(self):
        with pytest.raises(ValueError):
            DeviceHealth(0)
        with pytest.raises(ValueError):
            DeviceHealth(2, failure_threshold=0)
        with pytest.raises(ValueError):
            DeviceHealth(2, cooldown_s=-1.0)


class TestDrainOpened:
    def test_reports_each_opening_once(self):
        h = DeviceHealth(3, failure_threshold=1, cooldown_s=1.0)
        h.record_failure(1, 0.0)
        h.record_failure(2, 0.0)
        assert sorted(h.drain_opened()) == [1, 2]
        assert h.drain_opened() == []
        # reopen after a half-open probe fails -> drained again
        h.state(1, 1.5)
        h.record_failure(1, 1.5)
        assert h.drain_opened() == [1]

    def test_snapshot(self):
        h = DeviceHealth(2, failure_threshold=1)
        h.record_failure(1, 0.0)
        assert h.snapshot(0.1) == {0: "closed", 1: "open"}


class TestLinkBreakers:
    def test_unknown_pair_is_closed_and_allowed(self):
        h = DeviceHealth(4)
        assert h.link_state(1, 3, 0.0) is CircuitState.CLOSED
        assert h.allow_link(1, 3, 0.0)
        assert h.allow_link(2, 2, 0.0)  # self-pair is trivially fine

    def test_opens_after_threshold_and_half_opens(self):
        h = DeviceHealth(4, failure_threshold=3, cooldown_s=2.0)
        assert not h.record_link_failure(0, 2, 0.0)
        assert not h.record_link_failure(2, 0, 0.1)  # unordered pair
        assert h.record_link_failure(0, 2, 0.2)
        assert not h.allow_link(0, 2, 0.3)
        # device breakers are independent of link breakers
        assert h.allow(0, 0.3) and h.allow(2, 0.3)
        assert h.link_state(0, 2, 2.3) is CircuitState.HALF_OPEN
        assert h.allow_link(0, 2, 2.3)

    def test_success_resets_and_half_open_failure_reopens(self):
        h = DeviceHealth(4, failure_threshold=2, cooldown_s=1.0)
        h.record_link_failure(1, 2, 0.0)
        h.record_link_success(1, 2, 0.1)  # streak broken
        assert not h.record_link_failure(1, 2, 0.2)
        assert h.record_link_failure(1, 2, 0.3)  # now opens
        h.link_state(1, 2, 1.4)  # half-open probe window
        assert h.record_link_failure(1, 2, 1.4)  # one strike reopens
        assert h.link_state(1, 2, 1.5) is CircuitState.OPEN

    def test_drain_opened_links(self):
        h = DeviceHealth(4, failure_threshold=1)
        h.record_link_failure(0, 1, 0.0)
        h.record_link_failure(2, 3, 0.1)
        assert h.drain_opened_links() == [(0, 1), (2, 3)]
        assert h.drain_opened_links() == []
        assert h.drain_opened() == []  # device drain untouched

    def test_link_transition_counters(self):
        tel = Telemetry()
        h = DeviceHealth(4, failure_threshold=1, cooldown_s=1.0,
                         telemetry=tel)
        h.record_link_failure(0, 2, 0.0)
        assert tel.registry.get("health_link_circuit_transitions_total",
                                link="0-2", to="open").value == 1
        h.record_link_success(0, 2, 1.5)  # half-open resolved, then closed
        assert tel.registry.get("health_link_circuit_transitions_total",
                                link="0-2", to="half_open").value == 1
        assert tel.registry.get("health_link_circuit_transitions_total",
                                link="0-2", to="closed").value == 1


class TestHealthTelemetry:
    def test_counters_and_state_gauge(self):
        tel = Telemetry()
        h = DeviceHealth(2, failure_threshold=2, cooldown_s=1.0,
                         telemetry=tel)
        gauge = tel.registry.get("health_circuit_state", device="1")
        assert gauge.value == 0.0
        h.record_failure(1, 0.0)
        h.record_failure(1, 0.1)
        assert gauge.value == 2.0  # open
        assert tel.registry.get("health_failures_total").value == 2
        assert tel.registry.get("health_circuit_transitions_total",
                                device="1", to="open").value == 1
        h.state(1, 1.2)
        assert gauge.value == 1.0  # half-open
        h.record_success(1, 1.3)
        assert gauge.value == 0.0
        assert tel.registry.get("health_successes_total").value == 1
