"""Transport + executor under injected faults.

Covers the sender-side failure semantics (loss retries, unreachable
give-up, wasted-time accounting), request-id threading, and the
executor's failover/degradation ladder.
"""

import numpy as np
import pytest

from repro.faults import (DeviceCrash, DeviceUnreachableError,
                          ExecutionFailedError, FaultInjector, FaultSchedule,
                          MessageLoss, ResilienceConfig, RetryPolicy)
from repro.devices import rpi4
from repro.nas import Supernet, build_graph, max_arch, min_arch, tiny_space
from repro.netsim import Cluster, NetworkCondition
from repro.partition import layerwise_split_plan, single_device_plan
from repro.runtime import DistributedExecutor
from repro.runtime.rpc import Transport
from repro.telemetry import Telemetry

SPACE = tiny_space()
POLICY = RetryPolicy(timeout_s=0.05, max_retries=2, backoff=2.0)


def _cluster(n=3):
    return Cluster([rpi4() for _ in range(n)],
                   NetworkCondition((100.0,) * (n - 1), (10.0,) * (n - 1)))


def _injector(events, now=1.0, seed=0):
    inj = FaultInjector(FaultSchedule(events), seed=seed)
    inj.advance(now)
    return inj


class TestTransportFaults:
    def test_unreachable_peer_exhausts_retries(self):
        inj = _injector([DeviceCrash(0.0, 2.0, device=1)])
        tr = Transport(_cluster(), faults=inj, retry=POLICY)
        x = np.ones((1, 4))
        with pytest.raises(DeviceUnreachableError) as ei:
            tr.send_tensor(x, 0, 1, 32, now=0.0)
        assert ei.value.device == 1
        assert ei.value.retries == POLICY.max_retries
        assert ei.value.wasted_s == pytest.approx(POLICY.give_up_cost())
        # nothing was delivered: no message logged
        assert tr.num_messages == 0 and tr.log == []

    def test_blames_remote_sender_when_dst_is_gateway(self):
        inj = _injector([DeviceCrash(0.0, 2.0, device=2)])
        tr = Transport(_cluster(), faults=inj, retry=POLICY)
        with pytest.raises(DeviceUnreachableError) as ei:
            tr.send_control(2, 0, "result", now=0.0)
        assert ei.value.device == 2

    def test_loss_retries_show_up_in_latency(self):
        inj = _injector([MessageLoss(0.0, 10.0, prob=0.7)], seed=4)
        tr = Transport(_cluster(), faults=inj, retry=POLICY)
        x = np.ones((1, 64))
        clean = Transport(_cluster()).send_tensor(x, 0, 1, 32, now=0.0)
        # draw until a delivery needed at least one retransmission
        msg = None
        for _ in range(30):
            m = tr.send_tensor(x, 0, 1, 32, now=0.0)
            if m.retries:
                msg = m
                break
        assert msg is not None, "p=0.7 never cost a retry in 30 sends"
        waited = sum(POLICY.timeout_of(i) for i in range(msg.retries))
        assert msg.delivered_at == pytest.approx(
            clean.delivered_at + waited)
        assert tr.num_retries >= msg.retries
        assert tr.wasted_s > 0.0

    def test_request_id_threads_through_messages(self):
        tr = Transport(_cluster())
        tr.request_id = 42
        msg = tr.send_control(0, 1, "probe", now=0.0)
        assert msg.request_id == 42
        tr.request_id = None
        assert tr.send_control(0, 1, "probe", now=0.0).request_id is None

    def test_health_records_delivery_outcomes(self):
        from repro.faults import DeviceHealth
        inj = _injector([DeviceCrash(0.0, 2.0, device=1)])
        health = DeviceHealth(3, failure_threshold=1)
        tr = Transport(_cluster(), faults=inj, health=health, retry=POLICY)
        with pytest.raises(DeviceUnreachableError):
            tr.send_control(0, 1, "x", now=0.0)
        assert not health.allow(1, 0.0)
        tr.send_control(0, 2, "x", now=0.0)
        assert health.allow(2, 0.0)

    def test_reset_log_clears_fault_aggregates(self):
        inj = _injector([MessageLoss(0.0, 10.0, prob=0.6)], seed=1)
        tr = Transport(_cluster(), faults=inj, retry=POLICY)
        x = np.ones((1, 64))
        delivered = 0
        for _ in range(20):
            try:
                tr.send_tensor(x, 0, 1, 32, now=0.0)
                delivered += 1
            except DeviceUnreachableError:
                pass  # give-ups also leave retry residue to reset
        assert tr.num_messages == delivered
        assert tr.num_retries > 0
        tr.reset_log()
        assert (tr.total_bytes, tr.num_messages, tr.num_retries,
                tr.wasted_s) == (0, 0, 0, 0.0)

    def test_unreachable_telemetry(self):
        tel = Telemetry()
        inj = _injector([DeviceCrash(0.0, 2.0, device=1)])
        tr = Transport(_cluster(), telemetry=tel, faults=inj, retry=POLICY)
        with pytest.raises(DeviceUnreachableError):
            tr.send_control(0, 1, "x", now=0.0)
        assert tel.registry.get("transport_unreachable_total").value == 1
        assert (tel.registry.get("transport_retries_total").value
                == POLICY.max_retries)


@pytest.fixture(scope="module")
def net():
    return Supernet(SPACE, seed=2).eval()


@pytest.fixture(scope="module")
def x():
    return np.random.default_rng(0).normal(size=(1, 3, 32, 32))


class TestExecutorFailover:
    def _executor(self, net, events, telemetry=None, **res_kw):
        cluster = _cluster(3)
        inj = _injector(events)
        res = ResilienceConfig(retry=POLICY, **res_kw)
        return DistributedExecutor(net, cluster, telemetry=telemetry,
                                   faults=inj, resilience=res), cluster

    def test_failover_to_surviving_remote(self, net, x):
        arch = max_arch(SPACE)
        graph = build_graph(arch, SPACE)
        ex, _ = self._executor(net, [DeviceCrash(0.0, 9.0, device=1)])
        plan = layerwise_split_plan(graph, len(graph) // 2, remote=1)
        res = ex.execute(x, arch, plan)
        assert res.outcome == "retried"
        assert res.failovers == 1
        assert res.retries == POLICY.max_retries
        assert res.executed_arch == arch  # same model, different device
        assert res.penalty_s == pytest.approx(POLICY.give_up_cost())
        # the wasted discovery time is charged to the reported latency
        direct = net.forward_arch(x, arch)
        assert (res.logits.argmax(1) == direct.argmax(1)).all()

    def test_degrades_to_gateway_when_no_remote_survives(self, net, x):
        arch = max_arch(SPACE)
        graph = build_graph(arch, SPACE)
        ex, _ = self._executor(net, [DeviceCrash(0.0, 9.0, device=1),
                                     DeviceCrash(0.0, 9.0, device=2)])
        plan = layerwise_split_plan(graph, len(graph) // 2, remote=1)
        res = ex.execute(x, arch, plan)
        assert res.outcome == "degraded"
        assert res.executed_arch != arch
        assert res.executed_arch.resolution == arch.resolution
        assert res.logits.shape == (1, SPACE.num_classes)
        # two give-ups: original target, then the failover target
        assert res.penalty_s == pytest.approx(2 * POLICY.give_up_cost())

    def test_failover_disabled_raises(self, net, x):
        arch = max_arch(SPACE)
        graph = build_graph(arch, SPACE)
        ex, _ = self._executor(net, [DeviceCrash(0.0, 9.0, device=1)],
                               failover=False)
        plan = layerwise_split_plan(graph, len(graph) // 2, remote=1)
        with pytest.raises(ExecutionFailedError) as ei:
            ex.execute(x, arch, plan)
        assert ei.value.device == 1
        assert ei.value.wasted_s == pytest.approx(POLICY.give_up_cost())

    def test_healthy_world_is_plain_execution(self, net, x):
        arch = max_arch(SPACE)
        graph = build_graph(arch, SPACE)
        ex, cluster = self._executor(net, [])
        plain = DistributedExecutor(net, cluster)
        plan = layerwise_split_plan(graph, len(graph) // 2, remote=1)
        res = ex.execute(x, arch, plan)
        ref = plain.execute(x, arch, plan)
        assert res.outcome == "ok"
        assert res.report.total_s == ref.report.total_s  # bit-identical
        np.testing.assert_allclose(res.logits, ref.logits, atol=0)

    def test_request_id_reaches_segment_spans(self, net, x):
        tel = Telemetry()
        arch = min_arch(SPACE)
        graph = build_graph(arch, SPACE)
        ex = DistributedExecutor(net, _cluster(3), telemetry=tel)
        x16 = np.random.default_rng(3).normal(size=(1, 3, 16, 16))
        ex.execute(x16, arch, single_device_plan(graph), request_id=7)
        assert tel.tracer.finished
        assert all(sp.attrs.get("request") == 7
                   for sp in tel.tracer.finished)

    def test_failover_telemetry(self, net, x):
        tel = Telemetry()
        arch = max_arch(SPACE)
        graph = build_graph(arch, SPACE)
        ex, _ = self._executor(net, [DeviceCrash(0.0, 9.0, device=1),
                                     DeviceCrash(0.0, 9.0, device=2)],
                               telemetry=tel)
        plan = layerwise_split_plan(graph, len(graph) // 2, remote=1)
        ex.execute(x, arch, plan)
        assert tel.registry.get("executor_failovers_total").value == 2
        assert tel.registry.get("executor_degraded_total").value == 1
