"""Fault schedules: validation, point-in-time queries, generators."""

import pytest

from repro.faults import (CorrelatedFailure, DeviceCrash, FaultSchedule,
                          LinkDegradation, LinkFailure, LinkFlap,
                          MessageLoss, Partition, Straggler,
                          chaos_schedule, crash_and_recover_schedule)
from repro.netsim import NetworkCondition


class TestEventValidation:
    def test_window_must_be_ordered(self):
        with pytest.raises(ValueError):
            DeviceCrash(5.0, 5.0, device=1)
        with pytest.raises(ValueError):
            DeviceCrash(-1.0, 2.0, device=1)

    def test_gateway_cannot_crash(self):
        with pytest.raises(ValueError):
            DeviceCrash(0.0, 1.0, device=0)

    def test_gateway_cannot_be_partitioned(self):
        with pytest.raises(ValueError):
            Partition(0.0, 1.0, devices=(0, 1))
        with pytest.raises(ValueError):
            Partition(0.0, 1.0, devices=())

    def test_straggler_slowdown_at_least_one(self):
        with pytest.raises(ValueError):
            Straggler(0.0, 1.0, device=1, slowdown=0.5)

    def test_degradation_factor_range(self):
        with pytest.raises(ValueError):
            LinkDegradation(0.0, 1.0, device=1, bw_factor=0.0)
        with pytest.raises(ValueError):
            LinkDegradation(0.0, 1.0, device=1, bw_factor=1.5)
        with pytest.raises(ValueError):
            LinkDegradation(0.0, 1.0, device=1, extra_delay_ms=-1.0)

    def test_loss_prob_range(self):
        with pytest.raises(ValueError):
            MessageLoss(0.0, 1.0, prob=1.0)
        with pytest.raises(ValueError):
            MessageLoss(0.0, 1.0, prob=-0.1)

    def test_active_window_is_half_open(self):
        e = DeviceCrash(1.0, 2.0, device=1)
        assert not e.active(0.99)
        assert e.active(1.0)
        assert e.active(1.99)
        assert not e.active(2.0)


class TestScheduleQueries:
    def test_rejects_non_events(self):
        with pytest.raises(TypeError):
            FaultSchedule(["crash"])

    def test_down_and_unreachable(self):
        sched = FaultSchedule([
            DeviceCrash(1.0, 2.0, device=1),
            Partition(1.5, 3.0, devices=(2, 3)),
        ])
        assert sched.down_devices(1.2) == {1}
        assert sched.unreachable_devices(1.7) == {1, 2, 3}
        assert sched.unreachable_devices(2.5) == {2, 3}
        assert sched.unreachable_devices(3.0) == frozenset()

    def test_reachability(self):
        sched = FaultSchedule([Partition(0.0, 1.0, devices=(2,))])
        assert sched.reachable(0, 1, 0.5)
        assert not sched.reachable(0, 2, 0.5)
        # remote-remote relays through the switch the partition cut off
        assert not sched.reachable(1, 2, 0.5)
        assert sched.reachable(2, 2, 0.5)  # self-sends always deliver
        assert sched.reachable(0, 2, 1.0)

    def test_compute_scale_compounds(self):
        sched = FaultSchedule([
            Straggler(0.0, 2.0, device=1, slowdown=2.0),
            Straggler(0.0, 2.0, device=1, slowdown=3.0),
            Straggler(0.0, 2.0, device=2, slowdown=1.5),
        ])
        assert sched.compute_scale(1.0) == {1: 6.0, 2: 1.5}
        assert sched.compute_scale(2.0) == {}

    def test_loss_prob_compounds_over_crossed_links(self):
        sched = FaultSchedule([MessageLoss(0.0, 1.0, prob=0.5)])
        # gateway->remote crosses one remote link
        assert sched.loss_prob(0, 1, 0.5) == pytest.approx(0.5)
        # remote->remote crosses both
        assert sched.loss_prob(1, 2, 0.5) == pytest.approx(0.75)
        assert sched.loss_prob(1, 1, 0.5) == 0.0
        assert sched.loss_prob(0, 1, 1.0) == 0.0

    def test_loss_prob_per_device(self):
        sched = FaultSchedule([MessageLoss(0.0, 1.0, prob=0.3, device=2)])
        assert sched.loss_prob(0, 1, 0.5) == 0.0
        assert sched.loss_prob(0, 2, 0.5) == pytest.approx(0.3)

    def test_degrade(self):
        base = NetworkCondition((100.0, 80.0), (10.0, 20.0))
        sched = FaultSchedule([
            LinkDegradation(0.0, 1.0, device=1, bw_factor=0.5,
                            extra_delay_ms=15.0)])
        out = sched.degrade(base, 0.5)
        assert out.bandwidths_mbps == (50.0, 80.0)
        assert out.delays_ms == (25.0, 20.0)
        # inactive window: the exact same object comes back
        assert sched.degrade(base, 2.0) is base

    def test_degrade_ignores_out_of_range_device(self):
        base = NetworkCondition((100.0,), (10.0,))
        sched = FaultSchedule([
            LinkDegradation(0.0, 1.0, device=5, bw_factor=0.5)])
        assert sched.degrade(base, 0.5) is base

    def test_horizon(self):
        assert FaultSchedule([]).horizon == 0.0
        sched = FaultSchedule([DeviceCrash(1.0, 4.0, device=1),
                               Straggler(0.0, 2.0, device=1)])
        assert sched.horizon == 4.0


class TestLinkEvents:
    def test_link_failure_validation_and_edge(self):
        with pytest.raises(ValueError):
            LinkFailure(0.0, 1.0, a=2, b=2)
        assert LinkFailure(0.0, 1.0, a=3, b=1).edge == (1, 3)

    def test_down_links_collects_failures(self):
        sched = FaultSchedule([LinkFailure(1.0, 4.0, a=0, b=1),
                               LinkFailure(2.0, 5.0, a=2, b=1)])
        assert sched.down_links(0.5) == frozenset()
        assert sched.down_links(1.5) == frozenset({(0, 1)})
        assert sched.down_links(3.0) == frozenset({(0, 1), (1, 2)})
        assert sched.down_links(4.5) == frozenset({(1, 2)})

    def test_flap_is_deterministic_and_order_independent(self):
        kw = dict(a=0, b=1, p_fail=0.4, p_recover=0.4, step_s=0.5, seed=9)
        f1 = LinkFlap(0.0, 20.0, **kw)
        f2 = LinkFlap(0.0, 20.0, **kw)
        times = [0.1 + 0.5 * k for k in range(40)]
        forward = [f1.down_at(t) for t in times]
        backward = [f2.down_at(t) for t in reversed(times)]
        assert forward == list(reversed(backward))
        # the onset is the first outage; outside the window it is up
        assert f1.down_at(0.0)
        assert not f1.down_at(25.0)
        # different seed, different burst pattern
        f3 = LinkFlap(0.0, 20.0, a=0, b=1, p_fail=0.4, p_recover=0.4,
                      step_s=0.5, seed=10)
        assert [f3.down_at(t) for t in times] != forward

    def test_flap_produces_bursts_not_iid(self):
        """Small p_recover yields multi-step outage runs."""
        flap = LinkFlap(0.0, 100.0, a=0, b=1, p_fail=0.5, p_recover=0.1,
                        step_s=1.0, seed=0)
        states = [flap.down_at(t + 0.5) for t in range(100)]
        longest = run = 0
        for s in states:
            run = run + 1 if s else 0
            longest = max(longest, run)
        assert longest >= 3

    def test_flap_validation(self):
        with pytest.raises(ValueError):
            LinkFlap(0.0, 1.0, p_fail=0.0)
        with pytest.raises(ValueError):
            LinkFlap(0.0, 1.0, step_s=0.0)

    def test_correlated_failure_validation(self):
        with pytest.raises(ValueError):
            CorrelatedFailure(0.0, 1.0)  # empty blast radius
        with pytest.raises(ValueError):
            CorrelatedFailure(0.0, 1.0, devices=(0,))  # gateway
        e = CorrelatedFailure(0.0, 1.0, devices=(2,), links=((3, 1),))
        assert e.links == ((1, 3),)  # normalized

    def test_correlated_failure_downs_devices_and_links_together(self):
        sched = FaultSchedule([CorrelatedFailure(
            2.0, 6.0, devices=(2, 3), links=((1, 2),), domain="rack")])
        assert sched.down_devices(3.0) == {2, 3}
        assert sched.down_links(3.0) == frozenset({(1, 2)})
        edges = [(0, 1), (1, 2), (2, 3), (0, 3)]
        # with the mesh edge list, the crashed devices sever everything
        assert sched.down_links(3.0, edges) == frozenset(
            {(1, 2), (2, 3), (0, 3)})
        assert sched.down_devices(6.0) == frozenset()
        assert sched.down_links(6.0, edges) == frozenset()

    def test_link_addressed_degradation(self):
        sched = FaultSchedule([
            LinkDegradation(0.0, 5.0, link=(2, 1), bw_factor=0.5,
                            extra_delay_ms=4.0),
            LinkDegradation(0.0, 5.0, link=(1, 2), bw_factor=0.5)])
        deg = sched.link_degradations(1.0, [(0, 1), (1, 2)])
        # both events hit the same normalized edge and compound
        assert deg == {(1, 2): (0.25, 4.0)}
        with pytest.raises(ValueError):
            LinkDegradation(0.0, 1.0, link=(1, 1))


class TestGenerators:
    def test_crash_and_recover(self):
        sched = crash_and_recover_schedule(device=2, crash_at=1.0,
                                           recover_at=3.0)
        assert sched.down_devices(2.0) == {2}
        assert sched.down_devices(3.0) == frozenset()

    def test_chaos_is_deterministic_in_seed(self):
        a = chaos_schedule(3, 30.0, seed=7)
        b = chaos_schedule(3, 30.0, seed=7)
        c = chaos_schedule(3, 30.0, seed=8)
        assert a.events == b.events
        assert a.events != c.events

    def test_chaos_events_start_within_horizon(self):
        sched = chaos_schedule(2, 20.0, seed=0, crash_rate_hz=0.2,
                               straggler_rate_hz=0.2, loss_prob=0.05)
        assert len(sched) > 0
        assert all(e.start < 20.0 for e in sched)

    def test_chaos_validates_inputs(self):
        with pytest.raises(ValueError):
            chaos_schedule(0, 10.0)
        with pytest.raises(ValueError):
            chaos_schedule(1, 0.0)
