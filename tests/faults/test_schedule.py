"""Fault schedules: validation, point-in-time queries, generators."""

import pytest

from repro.faults import (DeviceCrash, FaultSchedule, LinkDegradation,
                          MessageLoss, Partition, Straggler,
                          chaos_schedule, crash_and_recover_schedule)
from repro.netsim import NetworkCondition


class TestEventValidation:
    def test_window_must_be_ordered(self):
        with pytest.raises(ValueError):
            DeviceCrash(5.0, 5.0, device=1)
        with pytest.raises(ValueError):
            DeviceCrash(-1.0, 2.0, device=1)

    def test_gateway_cannot_crash(self):
        with pytest.raises(ValueError):
            DeviceCrash(0.0, 1.0, device=0)

    def test_gateway_cannot_be_partitioned(self):
        with pytest.raises(ValueError):
            Partition(0.0, 1.0, devices=(0, 1))
        with pytest.raises(ValueError):
            Partition(0.0, 1.0, devices=())

    def test_straggler_slowdown_at_least_one(self):
        with pytest.raises(ValueError):
            Straggler(0.0, 1.0, device=1, slowdown=0.5)

    def test_degradation_factor_range(self):
        with pytest.raises(ValueError):
            LinkDegradation(0.0, 1.0, device=1, bw_factor=0.0)
        with pytest.raises(ValueError):
            LinkDegradation(0.0, 1.0, device=1, bw_factor=1.5)
        with pytest.raises(ValueError):
            LinkDegradation(0.0, 1.0, device=1, extra_delay_ms=-1.0)

    def test_loss_prob_range(self):
        with pytest.raises(ValueError):
            MessageLoss(0.0, 1.0, prob=1.0)
        with pytest.raises(ValueError):
            MessageLoss(0.0, 1.0, prob=-0.1)

    def test_active_window_is_half_open(self):
        e = DeviceCrash(1.0, 2.0, device=1)
        assert not e.active(0.99)
        assert e.active(1.0)
        assert e.active(1.99)
        assert not e.active(2.0)


class TestScheduleQueries:
    def test_rejects_non_events(self):
        with pytest.raises(TypeError):
            FaultSchedule(["crash"])

    def test_down_and_unreachable(self):
        sched = FaultSchedule([
            DeviceCrash(1.0, 2.0, device=1),
            Partition(1.5, 3.0, devices=(2, 3)),
        ])
        assert sched.down_devices(1.2) == {1}
        assert sched.unreachable_devices(1.7) == {1, 2, 3}
        assert sched.unreachable_devices(2.5) == {2, 3}
        assert sched.unreachable_devices(3.0) == frozenset()

    def test_reachability(self):
        sched = FaultSchedule([Partition(0.0, 1.0, devices=(2,))])
        assert sched.reachable(0, 1, 0.5)
        assert not sched.reachable(0, 2, 0.5)
        # remote-remote relays through the switch the partition cut off
        assert not sched.reachable(1, 2, 0.5)
        assert sched.reachable(2, 2, 0.5)  # self-sends always deliver
        assert sched.reachable(0, 2, 1.0)

    def test_compute_scale_compounds(self):
        sched = FaultSchedule([
            Straggler(0.0, 2.0, device=1, slowdown=2.0),
            Straggler(0.0, 2.0, device=1, slowdown=3.0),
            Straggler(0.0, 2.0, device=2, slowdown=1.5),
        ])
        assert sched.compute_scale(1.0) == {1: 6.0, 2: 1.5}
        assert sched.compute_scale(2.0) == {}

    def test_loss_prob_compounds_over_crossed_links(self):
        sched = FaultSchedule([MessageLoss(0.0, 1.0, prob=0.5)])
        # gateway->remote crosses one remote link
        assert sched.loss_prob(0, 1, 0.5) == pytest.approx(0.5)
        # remote->remote crosses both
        assert sched.loss_prob(1, 2, 0.5) == pytest.approx(0.75)
        assert sched.loss_prob(1, 1, 0.5) == 0.0
        assert sched.loss_prob(0, 1, 1.0) == 0.0

    def test_loss_prob_per_device(self):
        sched = FaultSchedule([MessageLoss(0.0, 1.0, prob=0.3, device=2)])
        assert sched.loss_prob(0, 1, 0.5) == 0.0
        assert sched.loss_prob(0, 2, 0.5) == pytest.approx(0.3)

    def test_degrade(self):
        base = NetworkCondition((100.0, 80.0), (10.0, 20.0))
        sched = FaultSchedule([
            LinkDegradation(0.0, 1.0, device=1, bw_factor=0.5,
                            extra_delay_ms=15.0)])
        out = sched.degrade(base, 0.5)
        assert out.bandwidths_mbps == (50.0, 80.0)
        assert out.delays_ms == (25.0, 20.0)
        # inactive window: the exact same object comes back
        assert sched.degrade(base, 2.0) is base

    def test_degrade_ignores_out_of_range_device(self):
        base = NetworkCondition((100.0,), (10.0,))
        sched = FaultSchedule([
            LinkDegradation(0.0, 1.0, device=5, bw_factor=0.5)])
        assert sched.degrade(base, 0.5) is base

    def test_horizon(self):
        assert FaultSchedule([]).horizon == 0.0
        sched = FaultSchedule([DeviceCrash(1.0, 4.0, device=1),
                               Straggler(0.0, 2.0, device=1)])
        assert sched.horizon == 4.0


class TestGenerators:
    def test_crash_and_recover(self):
        sched = crash_and_recover_schedule(device=2, crash_at=1.0,
                                           recover_at=3.0)
        assert sched.down_devices(2.0) == {2}
        assert sched.down_devices(3.0) == frozenset()

    def test_chaos_is_deterministic_in_seed(self):
        a = chaos_schedule(3, 30.0, seed=7)
        b = chaos_schedule(3, 30.0, seed=7)
        c = chaos_schedule(3, 30.0, seed=8)
        assert a.events == b.events
        assert a.events != c.events

    def test_chaos_events_start_within_horizon(self):
        sched = chaos_schedule(2, 20.0, seed=0, crash_rate_hz=0.2,
                               straggler_rate_hz=0.2, loss_prob=0.05)
        assert len(sched) > 0
        assert all(e.start < 20.0 for e in sched)

    def test_chaos_validates_inputs(self):
        with pytest.raises(ValueError):
            chaos_schedule(0, 10.0)
        with pytest.raises(ValueError):
            chaos_schedule(1, 0.0)
