"""Counters, gauges, log-bucketed histograms, and the registry."""

import math

import pytest

from repro.telemetry import Counter, Gauge, Histogram, MetricsRegistry


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        c = Counter("requests_total")
        assert c.value == 0.0
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_rejects_negative_increments(self):
        c = Counter("requests_total")
        with pytest.raises(ValueError):
            c.inc(-1.0)

    def test_kind(self):
        assert Counter("x").kind == "counter"


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge("queue_depth")
        g.set(10.0)
        g.inc(2.0)
        g.dec(5.0)
        assert g.value == 7.0

    def test_can_go_negative(self):
        g = Gauge("delta")
        g.dec(3.0)
        assert g.value == -3.0


class TestHistogram:
    def test_empty_histogram_is_all_zero(self):
        h = Histogram("lat_s")
        assert h.count == 0
        assert h.mean == 0.0
        assert h.quantile(0.5) == 0.0

    def test_count_sum_min_max(self):
        h = Histogram("lat_s")
        for v in (0.01, 0.02, 0.04):
            h.observe(v)
        assert h.count == 3
        assert h.sum == pytest.approx(0.07)
        assert h.min == pytest.approx(0.01)
        assert h.max == pytest.approx(0.04)
        assert h.mean == pytest.approx(0.07 / 3)

    def test_quantiles_within_bucket_relative_error(self):
        """Streaming quantiles are exact to one bucket's width (~10%)."""
        h = Histogram("lat_s", growth=1.1)
        values = [0.001 * (1 + i) for i in range(1000)]  # 1ms .. 1s
        for v in values:
            h.observe(v)
        for q in (0.5, 0.95, 0.99):
            exact = values[int(q * (len(values) - 1))]
            assert h.quantile(q) == pytest.approx(exact, rel=0.12)

    def test_quantile_clamped_by_exact_min_max(self):
        h = Histogram("lat_s")
        h.observe(0.5)
        assert h.quantile(0.0) == pytest.approx(0.5)
        assert h.quantile(1.0) == pytest.approx(0.5)

    def test_underflow_reads_back_zero(self):
        """Zero observations (idle queue waits) must not blow up."""
        h = Histogram("queue_s", lo=1e-6)
        h.observe(0.0)
        h.observe(1e-9)
        assert h.count == 2
        assert h.quantile(0.5) == 0.0

    def test_overflow_reads_back_observed_max(self):
        h = Histogram("lat_s", hi=1.0)
        h.observe(0.5)
        h.observe(123.0)
        assert h.quantile(1.0) == pytest.approx(123.0)

    def test_fixed_memory(self):
        """Bucket storage does not grow with observation count."""
        h = Histogram("lat_s")
        nb = len(h._counts)
        for i in range(10000):
            h.observe(1e-5 * (1 + i))
        assert len(h._counts) == nb

    def test_invalid_bounds(self):
        with pytest.raises(ValueError):
            Histogram("x", lo=0.0)
        with pytest.raises(ValueError):
            Histogram("x", lo=2.0, hi=1.0)
        with pytest.raises(ValueError):
            Histogram("x", growth=1.0)

    def test_invalid_quantile(self):
        with pytest.raises(ValueError):
            Histogram("x").quantile(1.5)


class TestMetricsRegistry:
    def test_same_name_labels_returns_same_instrument(self):
        reg = MetricsRegistry()
        a = reg.counter("bytes_total", link="0-1")
        b = reg.counter("bytes_total", link="0-1")
        assert a is b

    def test_label_sets_are_separate_series(self):
        reg = MetricsRegistry()
        a = reg.counter("bytes_total", link="0-1")
        b = reg.counter("bytes_total", link="0-2")
        assert a is not b
        a.inc(10)
        assert b.value == 0.0

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError):
            reg.gauge("x")

    def test_child_scope_prefixes_but_shares_store(self):
        root = MetricsRegistry()
        child = root.child("server")
        c = child.counter("requests_total")
        assert c.name == "server_requests_total"
        assert root.get("server_requests_total") is c
        assert len(root) == 1

    def test_nested_child_scopes(self):
        reg = MetricsRegistry().child("a").child("b")
        assert reg.counter("x").name == "a_b_x"

    def test_empty_scope_rejected(self):
        with pytest.raises(ValueError):
            MetricsRegistry().child("")

    def test_get_missing_returns_none(self):
        assert MetricsRegistry().get("nope") is None

    def test_collect_is_sorted_and_complete(self):
        reg = MetricsRegistry()
        reg.counter("b")
        reg.gauge("a")
        reg.counter("c", link="1")
        names = [m.name for m in reg.collect()]
        assert names == sorted(names)
        assert len(names) == 3

    def test_collect_hooks_run_at_collect_time(self):
        """Snapshot gauges sync via hooks, not in the hot path."""
        root = MetricsRegistry()
        child = root.child("cache")
        g = child.gauge("entries")
        state = {"entries": 0}
        child.add_collect_hook(lambda: g.set(state["entries"]))
        state["entries"] = 7
        assert g.value == 0.0          # hot path never touched the gauge
        root.collect()                 # hooks shared with the root
        assert g.value == 7.0
