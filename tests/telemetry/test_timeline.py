"""Flattening span trees into per-request timelines."""

import numpy as np
import pytest

from repro.runtime.rpc import Message
from repro.telemetry import (RequestTimeline, Telemetry, TimelineEvent,
                             Tracer, stitch_timelines)


def _request_tree(tracer, arrival=0.0, request=0, satisfied=None):
    extra = {} if satisfied is None else {"satisfied": satisfied}
    with tracer.span("request", sim_time=arrival, request=request,
                     **extra) as root:
        with tracer.span("queue", sim_time=arrival) as qs:
            qs.set_sim_end(arrival + 0.01)
        with tracer.span("decision", sim_time=arrival + 0.01) as sp:
            sp.add_sim(0.02)
        with tracer.span("execute", sim_time=arrival + 0.03) as sp:
            with tracer.span("segment", sim_time=arrival + 0.03) as seg:
                seg.set_sim_end(arrival + 0.08)
            sp.set_sim_end(arrival + 0.08)
        root.set_sim_end(arrival + 0.08)
    return tracer.finished[-1]


class TestFromSpan:
    def test_flatten_preserves_order_and_depth(self):
        root = _request_tree(Tracer())
        tl = RequestTimeline.from_span(root, request_id=7)
        assert tl.request_id == 7
        assert tl.phases() == ["request", "queue", "decision",
                               "execute", "segment"]
        assert [e.depth for e in tl.events] == [0, 1, 1, 1, 2]

    def test_envelope_properties(self):
        root = _request_tree(Tracer(), arrival=2.0)
        tl = RequestTimeline.from_span(root)
        assert tl.arrival_s == pytest.approx(2.0)
        assert tl.total_s == pytest.approx(0.08)

    def test_duration_of_sums_matching_phases(self):
        root = _request_tree(Tracer())
        tl = RequestTimeline.from_span(root)
        assert tl.duration_of("queue") == pytest.approx(0.01)
        assert tl.duration_of("decision") == pytest.approx(0.02)
        assert tl.duration_of("nope") == 0.0

    def test_empty_timeline(self):
        tl = RequestTimeline(request_id=0)
        assert tl.root is None
        assert tl.total_s == 0.0
        assert tl.arrival_s is None

    def test_to_dict(self):
        root = _request_tree(Tracer(), request=5)
        d = RequestTimeline.from_span(root, request_id=5).to_dict()
        assert d["request_id"] == 5
        assert d["attrs"]["request"] == 5
        assert [e["name"] for e in d["events"]][0] == "request"

    def test_render_gantt(self):
        root = _request_tree(Tracer())
        out = RequestTimeline.from_span(root).render(width=20)
        assert "request 0" in out
        assert "#" in out
        assert "segment" in out


class TestTimelineEvent:
    def test_to_dict_includes_attrs_only_when_present(self):
        e = TimelineEvent("queue", 0.0, 0.01, 0.0, 1)
        assert "attrs" not in e.to_dict()
        e2 = TimelineEvent("queue", 0.0, 0.01, 0.0, 1, {"k": "v"})
        assert e2.to_dict()["attrs"] == {"k": "v"}


class TestLazyMaterialization:
    def test_timelines_built_from_finished_roots_on_access(self):
        tel = Telemetry()
        for i in range(3):
            _request_tree(tel.tracer, arrival=float(i), request=i)
        tls = tel.timelines
        assert [tl.request_id for tl in tls] == [0, 1, 2]
        # repeated access does not duplicate
        assert len(tel.timelines) == 3

    def test_new_roots_appear_incrementally(self):
        tel = Telemetry()
        _request_tree(tel.tracer, request=0)
        assert len(tel.timelines) == 1
        _request_tree(tel.tracer, request=1)
        assert len(tel.timelines) == 2

    def test_survives_tracer_truncation(self):
        tel = Telemetry(tracer=Tracer(max_finished=2))
        for i in range(5):
            _request_tree(tel.tracer, request=i)
        # only the 2 newest roots are still materializable
        assert [tl.request_id for tl in tel.timelines] == [3, 4]

    def test_child_views_share_the_buffer(self):
        tel = Telemetry()
        child = tel.child("server")
        _request_tree(tel.tracer, request=0)
        assert len(child.timelines) == 1
        assert len(tel.timelines) == 1  # not double-consumed

    def test_max_timelines_bounds_memory(self):
        tel = Telemetry(max_timelines=2)
        for i in range(4):
            _request_tree(tel.tracer, request=i)
        assert [tl.request_id for tl in tel.timelines] == [2, 3]

    def test_add_timeline_appends_explicitly(self):
        tel = Telemetry()
        tel.add_timeline(RequestTimeline(request_id=42))
        assert tel.timelines[-1].request_id == 42


class TestSloAwareRetention:
    """Sampling and eviction must never hide SLO-violating requests.

    Regression surface for the pre-change hub, whose FIFO eviction at
    ``max_timelines`` silently dropped the oldest timelines regardless
    of whether they were the interesting (tail) ones.
    """

    def test_violators_survive_eviction(self):
        tel = Telemetry(max_timelines=2)
        for i in range(6):
            _request_tree(tel.tracer, arrival=float(i), request=i,
                          satisfied=(i not in (1, 4)))
        # 4 oldest *satisfying* timelines evicted; the two violators
        # (old as they are) survive
        assert [tl.request_id for tl in tel.timelines] == [1, 4]

    def test_violators_survive_sustained_load(self):
        """Under load far beyond the cap, every violator is retained."""
        tel = Telemetry(max_timelines=3)
        violators = {7, 19, 23, 41}
        for i in range(50):
            _request_tree(tel.tracer, arrival=float(i), request=i,
                          satisfied=(i not in violators))
            tel.timelines  # materialize incrementally, as serving does
        kept = {tl.request_id for tl in tel.timelines}
        assert violators <= kept

    def test_cap_yields_to_violators(self):
        """All-violator load may exceed max_timelines: the cap yields
        rather than hide the tail."""
        tel = Telemetry(max_timelines=2)
        for i in range(4):
            _request_tree(tel.tracer, request=i, satisfied=False)
        assert [tl.request_id for tl in tel.timelines] == [0, 1, 2, 3]

    def test_satisfying_timelines_still_evict_oldest_first(self):
        tel = Telemetry(max_timelines=2)
        for i in range(5):
            _request_tree(tel.tracer, request=i, satisfied=True)
        assert [tl.request_id for tl in tel.timelines] == [3, 4]

    def test_sample_every_keeps_one_in_n(self):
        tel = Telemetry(sample_every=2)
        for i in range(6):
            _request_tree(tel.tracer, request=i)
        assert [tl.request_id for tl in tel.timelines] == [0, 2, 4]

    def test_sampling_never_drops_violators(self):
        tel = Telemetry(sample_every=3)
        for i in range(9):
            _request_tree(tel.tracer, request=i,
                          satisfied=(i not in (1, 5)))
        # 1-in-3 keeps 0, 3, 6; violators 1 and 5 ride along
        assert [tl.request_id for tl in tel.timelines] == [0, 1, 3, 5, 6]

    def test_numpy_bool_satisfied_recognized(self):
        tel = Telemetry(max_timelines=1)
        _request_tree(tel.tracer, request=0,
                      satisfied=np.bool_(False))
        _request_tree(tel.tracer, request=1,
                      satisfied=np.bool_(True))
        assert [tl.request_id for tl in tel.timelines] == [0]

    def test_add_timeline_eviction_spares_violators(self):
        tel = Telemetry(max_timelines=2)
        tel.add_timeline(RequestTimeline(request_id=0,
                                         attrs={"satisfied": False}))
        tel.add_timeline(RequestTimeline(request_id=1))
        tel.add_timeline(RequestTimeline(request_id=2))
        assert [tl.request_id for tl in tel.timelines] == [0, 2]

    def test_sample_every_must_be_positive(self):
        with pytest.raises(ValueError, match="sample_every"):
            Telemetry(sample_every=0)

    def test_child_views_inherit_sampling(self):
        tel = Telemetry(sample_every=2)
        child = tel.child("server")
        assert child.sample_every == 2
        for i in range(4):
            _request_tree(tel.tracer, request=i)
        assert [tl.request_id for tl in child.timelines] == [0, 2]


def _device_timeline(request_id, events):
    """Timeline with (name, start, duration, depth) tuples as events."""
    return RequestTimeline(
        request_id=request_id,
        events=[TimelineEvent(n, s, d, 0.0, depth)
                for n, s, d, depth in events],
        attrs={"request": request_id})


class TestStitchTimelines:
    def test_merges_by_request_id(self):
        gateway = _device_timeline(3, [("request", 0.0, 0.10, 0),
                                       ("decision", 0.0, 0.02, 1)])
        remote = _device_timeline(3, [("segment", 0.05, 0.03, 1)])
        other = _device_timeline(4, [("request", 1.0, 0.05, 0)])
        out = stitch_timelines([gateway, remote, other])
        assert [tl.request_id for tl in out] == [3, 4]  # first-seen order
        assert out[0].phases() == ["request", "decision", "segment"]

    def test_non_root_events_sorted_by_sim_start(self):
        a = _device_timeline(0, [("request", 0.0, 0.10, 0),
                                 ("late", 0.08, 0.02, 1)])
        b = _device_timeline(0, [("early", 0.01, 0.02, 1)])
        out = stitch_timelines([a, b])
        assert out[0].phases() == ["request", "early", "late"]

    def test_attrs_union_first_writer_wins(self):
        a = _device_timeline(0, [("request", 0.0, 0.1, 0)])
        a.attrs.update(device=0, satisfied=True)
        b = _device_timeline(0, [("segment", 0.0, 0.1, 1)])
        b.attrs.update(device=1, engine="cache")
        out = stitch_timelines([a, b])
        assert out[0].attrs["device"] == 0
        assert out[0].attrs["engine"] == "cache"

    def test_messages_become_transfer_events(self):
        tl = _device_timeline(5, [("request", 0.0, 0.20, 0)])
        msg = Message(src=0, dst=1, payload=None, nbytes=4096,
                      sent_at=0.05, delivered_at=0.09, request_id=5,
                      retries=1)
        out = stitch_timelines([tl], messages=[msg])
        transfer = next(e for e in out[0].events if e.name == "transfer")
        assert transfer.sim_start == pytest.approx(0.05)
        assert transfer.sim_duration_s == pytest.approx(0.04)
        assert transfer.depth == 1
        assert transfer.attrs == {"src": 0, "dst": 1, "nbytes": 4096,
                                  "retries": 1}

    def test_unmatched_messages_ignored(self):
        tl = _device_timeline(5, [("request", 0.0, 0.2, 0)])
        stray = Message(src=0, dst=1, payload=None, nbytes=1,
                        sent_at=0.0, delivered_at=0.1, request_id=99)
        anonymous = Message(src=0, dst=1, payload=None, nbytes=1,
                            sent_at=0.0, delivered_at=0.1)
        out = stitch_timelines([tl], messages=[stray, anonymous])
        assert out[0].phases() == ["request"]

    def test_root_envelope_widened_to_cover_stitched_events(self):
        gateway = _device_timeline(0, [("request", 0.0, 0.10, 0)])
        remote = _device_timeline(0, [("segment", 0.08, 0.07, 1)])
        out = stitch_timelines([gateway, remote])
        assert out[0].total_s == pytest.approx(0.15)

    def test_inputs_not_mutated(self):
        gateway = _device_timeline(0, [("request", 0.0, 0.10, 0)])
        remote = _device_timeline(0, [("segment", 0.08, 0.07, 1)])
        stitch_timelines([gateway, remote])
        assert gateway.phases() == ["request"]
        assert gateway.total_s == pytest.approx(0.10)
        assert remote.phases() == ["segment"]

    def test_hub_timelines_unaffected_by_stitching(self):
        """The hub's copies stay pristine when their events get merged
        into a stitched view (events are shared, not copied)."""
        tel = Telemetry()
        _request_tree(tel.tracer, arrival=0.0, request=0)
        hub_tl = tel.timelines[0]
        late = _device_timeline(0, [("remote", 0.05, 0.5, 1)])
        stitched = stitch_timelines([hub_tl, late])
        assert stitched[0].total_s == pytest.approx(0.55)
        assert hub_tl.total_s == pytest.approx(0.08)
