"""Flattening span trees into per-request timelines."""

import pytest

from repro.telemetry import RequestTimeline, Telemetry, TimelineEvent, Tracer


def _request_tree(tracer, arrival=0.0, request=0):
    with tracer.span("request", sim_time=arrival, request=request) as root:
        with tracer.span("queue", sim_time=arrival) as qs:
            qs.set_sim_end(arrival + 0.01)
        with tracer.span("decision", sim_time=arrival + 0.01) as sp:
            sp.add_sim(0.02)
        with tracer.span("execute", sim_time=arrival + 0.03) as sp:
            with tracer.span("segment", sim_time=arrival + 0.03) as seg:
                seg.set_sim_end(arrival + 0.08)
            sp.set_sim_end(arrival + 0.08)
        root.set_sim_end(arrival + 0.08)
    return tracer.finished[-1]


class TestFromSpan:
    def test_flatten_preserves_order_and_depth(self):
        root = _request_tree(Tracer())
        tl = RequestTimeline.from_span(root, request_id=7)
        assert tl.request_id == 7
        assert tl.phases() == ["request", "queue", "decision",
                               "execute", "segment"]
        assert [e.depth for e in tl.events] == [0, 1, 1, 1, 2]

    def test_envelope_properties(self):
        root = _request_tree(Tracer(), arrival=2.0)
        tl = RequestTimeline.from_span(root)
        assert tl.arrival_s == pytest.approx(2.0)
        assert tl.total_s == pytest.approx(0.08)

    def test_duration_of_sums_matching_phases(self):
        root = _request_tree(Tracer())
        tl = RequestTimeline.from_span(root)
        assert tl.duration_of("queue") == pytest.approx(0.01)
        assert tl.duration_of("decision") == pytest.approx(0.02)
        assert tl.duration_of("nope") == 0.0

    def test_empty_timeline(self):
        tl = RequestTimeline(request_id=0)
        assert tl.root is None
        assert tl.total_s == 0.0
        assert tl.arrival_s is None

    def test_to_dict(self):
        root = _request_tree(Tracer(), request=5)
        d = RequestTimeline.from_span(root, request_id=5).to_dict()
        assert d["request_id"] == 5
        assert d["attrs"]["request"] == 5
        assert [e["name"] for e in d["events"]][0] == "request"

    def test_render_gantt(self):
        root = _request_tree(Tracer())
        out = RequestTimeline.from_span(root).render(width=20)
        assert "request 0" in out
        assert "#" in out
        assert "segment" in out


class TestTimelineEvent:
    def test_to_dict_includes_attrs_only_when_present(self):
        e = TimelineEvent("queue", 0.0, 0.01, 0.0, 1)
        assert "attrs" not in e.to_dict()
        e2 = TimelineEvent("queue", 0.0, 0.01, 0.0, 1, {"k": "v"})
        assert e2.to_dict()["attrs"] == {"k": "v"}


class TestLazyMaterialization:
    def test_timelines_built_from_finished_roots_on_access(self):
        tel = Telemetry()
        for i in range(3):
            _request_tree(tel.tracer, arrival=float(i), request=i)
        tls = tel.timelines
        assert [tl.request_id for tl in tls] == [0, 1, 2]
        # repeated access does not duplicate
        assert len(tel.timelines) == 3

    def test_new_roots_appear_incrementally(self):
        tel = Telemetry()
        _request_tree(tel.tracer, request=0)
        assert len(tel.timelines) == 1
        _request_tree(tel.tracer, request=1)
        assert len(tel.timelines) == 2

    def test_survives_tracer_truncation(self):
        tel = Telemetry(tracer=Tracer(max_finished=2))
        for i in range(5):
            _request_tree(tel.tracer, request=i)
        # only the 2 newest roots are still materializable
        assert [tl.request_id for tl in tel.timelines] == [3, 4]

    def test_child_views_share_the_buffer(self):
        tel = Telemetry()
        child = tel.child("server")
        _request_tree(tel.tracer, request=0)
        assert len(child.timelines) == 1
        assert len(tel.timelines) == 1  # not double-consumed

    def test_max_timelines_bounds_memory(self):
        tel = Telemetry(max_timelines=2)
        for i in range(4):
            _request_tree(tel.tracer, request=i)
        assert [tl.request_id for tl in tel.timelines] == [2, 3]

    def test_add_timeline_appends_explicitly(self):
        tel = Telemetry()
        tel.add_timeline(RequestTimeline(request_id=42))
        assert tel.timelines[-1].request_id == 42
