"""Telemetry wired through every instrumented component.

One test per instrumented layer — server, facade, executor, transport,
monitor, SUPREME trainer — each asserting that its scoped metrics exist
and carry plausible values after real work, plus the cross-cutting
guarantees: a shared hub sees everything, and ``telemetry=None`` leaves
behavior bit-identical.
"""

import numpy as np
import pytest

from repro.core import SLO, Murmuration, SearchDecisionEngine
from repro.devices import desktop_gtx1080, rpi4
from repro.nas import MBV3_SPACE, Supernet, build_graph, max_arch, tiny_space
from repro.netsim import Cluster, NetworkCondition, NetworkMonitor
from repro.partition import layerwise_split_plan
from repro.rl import EnvConfig, MurmurationEnv, SupremeConfig, SupremeTrainer
from repro.runtime import DistributedExecutor, InferenceServer, Transport
from repro.telemetry import Telemetry


def _system(telemetry=None, slo_ms=200.0):
    devices = [rpi4(), desktop_gtx1080()]
    return Murmuration(
        MBV3_SPACE, devices, NetworkCondition((100.0,), (20.0,)),
        SearchDecisionEngine(MBV3_SPACE, devices, n_random_archs=4),
        slo=SLO.latency_ms(slo_ms), use_predictor=False,
        monitor_noise=0.0, seed=0, telemetry=telemetry)


class TestServerInstrumentation:
    def test_server_metrics_and_timelines(self):
        tel = Telemetry()
        server = InferenceServer(_system(tel), arrival_rate_hz=4.0,
                                 seed=1, telemetry=tel)
        stats = server.run(num_requests=6)
        reg = tel.registry
        assert reg.get("server_requests_total").value == 6
        sat = reg.get("server_slo_satisfied_total").value
        vio = reg.get("server_slo_violated_total").value
        assert sat + vio == 6
        assert reg.get("server_e2e_s").count == 6
        assert reg.get("server_queue_wait_s").count == 6
        # compliance gauge syncs via the collect hook
        reg.collect()
        assert reg.get("server_slo_compliance").value == pytest.approx(
            stats.slo_compliance)
        # one timeline per request telling the full story
        assert len(tel.timelines) == 6
        phases = set(tel.timelines[0].phases())
        assert {"request", "queue", "decision", "execute"} <= phases

    def test_timeline_e2e_matches_stats(self):
        tel = Telemetry()
        server = InferenceServer(_system(tel), arrival_rate_hz=4.0,
                                 seed=2, telemetry=tel)
        stats = server.run(num_requests=4)
        for tl, rec in zip(tel.timelines, stats.records):
            assert tl.total_s == pytest.approx(rec.end_to_end_s)
            assert tl.arrival_s == pytest.approx(rec.arrival)


class TestFacadeInstrumentation:
    def test_core_metrics_after_inference(self):
        tel = Telemetry()
        system = _system(tel)
        for _ in range(5):
            system.infer()
        reg = tel.registry
        assert reg.get("core_inference_s").count == 5
        assert reg.get("core_decision_s").count == 5
        # engine-labeled decision counters: first a search, then cache
        total = sum(m.value for m in reg.collect()
                    if m.name == "core_decisions_total")
        assert total == 5
        assert reg.get("core_decisions_total", engine="cache").value >= 1

    def test_cache_gauges_sync_on_collect(self):
        tel = Telemetry()
        system = _system(tel)
        system.infer()
        system.infer()
        reg = tel.registry
        reg.collect()
        assert reg.get("core_cache_hits").value == system.cache.hits
        assert reg.get("core_cache_misses").value == system.cache.misses
        assert reg.get("core_cache_entries").value == len(system.cache)


class TestExecutorInstrumentation:
    def test_segment_metrics(self):
        space = tiny_space()
        net = Supernet(space, seed=0).eval()
        cluster = Cluster([rpi4(), rpi4()],
                          NetworkCondition((100.0,), (10.0,)))
        tel = Telemetry()
        ex = DistributedExecutor(net, cluster, telemetry=tel)
        arch = max_arch(space)
        graph = build_graph(arch, space)
        plan = layerwise_split_plan(graph, len(graph) // 2, remote=1)
        x = np.random.default_rng(0).normal(size=(1, 3, 32, 32))
        result = ex.execute(x, arch, plan, sim_time=5.0)
        reg = tel.registry
        nseg = reg.get("executor_segments_total").value
        assert nseg >= 2  # a layerwise split runs at least two segments
        assert reg.get("executor_segment_compute_wall_s").count == nseg
        assert result.logits is not None


class TestTransportInstrumentation:
    def test_per_link_and_quantization_accounting(self):
        cluster = Cluster([rpi4(), rpi4()],
                          NetworkCondition((100.0,), (10.0,)))
        tel = Telemetry()
        t = Transport(cluster, telemetry=tel)
        x = np.ones((4, 4), dtype=np.float64)
        t.send_tensor(x, src=0, dst=1, bits=8, now=0.0)
        t.send_tensor(x, src=0, dst=1, bits=32, now=1.0)
        t.send_control(src=0, dst=1, payload="switch", now=2.0)
        reg = tel.registry
        assert reg.get("transport_messages_total").value == 3
        assert reg.get("transport_bytes_total").value > 0
        assert reg.get("transport_link_bytes_total", link="0-1").value > 0
        assert reg.get("transport_quantized_messages_total",
                       bits="8").value == 1
        assert reg.get("transport_transfer_s").count == 3

    def test_send_control_accounting(self):
        """Control messages are charged like any other cross-device
        traffic: default 256 bytes, per-link counters, transfer time."""
        cluster = Cluster([rpi4(), rpi4()],
                          NetworkCondition((100.0,), (10.0,)))
        tel = Telemetry()
        t = Transport(cluster, telemetry=tel)
        t.send_control(src=0, dst=1, payload="strategy", now=0.0)
        t.send_control(src=1, dst=0, payload="ack", now=1.0, nbytes=64)
        reg = tel.registry
        assert reg.get("transport_messages_total").value == 2
        assert reg.get("transport_bytes_total").value == 256 + 64
        assert reg.get("transport_link_bytes_total", link="0-1").value == 256
        assert reg.get("transport_link_bytes_total", link="1-0").value == 64
        assert t.total_bytes == 256 + 64
        # telemetry counters are monotonic: reset_log leaves them alone
        t.reset_log()
        assert reg.get("transport_bytes_total").value == 256 + 64
        assert t.total_bytes == 0

    def test_local_delivery_not_charged(self):
        cluster = Cluster([rpi4(), rpi4()],
                          NetworkCondition((100.0,), (10.0,)))
        tel = Telemetry()
        t = Transport(cluster, telemetry=tel)
        t.send_control(src=0, dst=0, payload="noop", now=0.0)
        assert tel.registry.get("transport_messages_total").value == 0


class TestMonitorInstrumentation:
    def test_probe_and_error_metrics(self):
        cluster = Cluster([rpi4(), rpi4()],
                          NetworkCondition((100.0,), (10.0,)))
        tel = Telemetry()
        mon = NetworkMonitor(cluster, noise=0.05, seed=0, telemetry=tel)
        for step in range(8):
            mon.probe_all(float(step))
        reg = tel.registry
        assert reg.get("monitor_probes_total", source="active").value == 8
        assert reg.get("monitor_bw_estimate_rel_error").count == 8
        assert reg.get("monitor_delay_estimate_rel_error").count == 8
        # smoothing converges: noise 5% -> mean relative error well under 1
        assert reg.get("monitor_bw_estimate_rel_error").mean < 0.5


class TestTrainerInstrumentation:
    def test_supreme_metrics_after_short_run(self):
        env = MurmurationEnv(MBV3_SPACE, [rpi4(), desktop_gtx1080()],
                             EnvConfig())
        tel = Telemetry()
        tr = SupremeTrainer(env, SupremeConfig(
            total_steps=64, rollout_batch=16, eval_every=64, seed=0),
            telemetry=tel)
        tr.train(env.validation_tasks(points=2))
        reg = tel.registry
        assert reg.get("supreme_episodes_total").value > 0
        assert reg.get("supreme_relabeled_reward").count > 0
        assert reg.get("supreme_buffer_entries").value == \
            tr.buffer.num_entries
        assert 0.0 <= reg.get("supreme_epsilon").value <= 1.0


class TestSharedHub:
    def test_one_hub_sees_every_scope(self):
        tel = Telemetry()
        server = InferenceServer(_system(tel), arrival_rate_hz=4.0,
                                 seed=3, telemetry=tel)
        server.run(num_requests=4)
        scopes = {m.name.split("_")[0] for m in tel.registry.collect()}
        assert {"server", "core", "monitor"} <= scopes

    def test_disabled_telemetry_same_simulated_outcomes(self):
        """Instrumentation must not perturb the simulated results.

        ``decision_s`` is wall-measured inside the engine, so it (and
        everything derived from it) legitimately jitters; every
        simulated quantity must match exactly.
        """
        run_off = InferenceServer(_system(None), arrival_rate_hz=4.0,
                                  seed=4, telemetry=None).run(6)
        run_on = InferenceServer(_system(Telemetry()), arrival_rate_hz=4.0,
                                 seed=4, telemetry=Telemetry()).run(6)
        for a, b in zip(run_off.records, run_on.records):
            assert a.arrival == b.arrival
            assert a.inference_s == b.inference_s
            assert a.switch_s == b.switch_s
            assert a.satisfied == b.satisfied
