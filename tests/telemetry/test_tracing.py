"""Dual-clock spans, nesting, and the no-op tracer."""

import pytest

from repro.telemetry import NULL_TRACER, NullTracer, Tracer
from repro.telemetry.tracing import _SHARED_NULL_SPAN


class TestSpanClocks:
    def test_simulated_interval(self):
        tracer = Tracer()
        with tracer.span("op", sim_time=10.0) as sp:
            sp.set_sim_end(10.5)
        assert sp.sim_duration_s == pytest.approx(0.5)

    def test_add_sim_accumulates(self):
        tracer = Tracer()
        with tracer.span("op", sim_time=1.0) as sp:
            sp.add_sim(0.2)
            sp.add_sim(0.3)
        assert sp.sim_end == pytest.approx(1.5)
        assert sp.sim_duration_s == pytest.approx(0.5)

    def test_add_sim_without_start_anchors_at_zero(self):
        tracer = Tracer()
        with tracer.span("op") as sp:
            sp.add_sim(0.25)
        assert sp.sim_start == 0.0
        assert sp.sim_duration_s == pytest.approx(0.25)

    def test_wall_clock_stamped(self):
        tracer = Tracer()
        with tracer.span("op") as sp:
            pass
        assert sp.wall_end is not None
        assert sp.wall_duration_s >= 0.0

    def test_missing_sim_end_means_zero_duration(self):
        tracer = Tracer()
        with tracer.span("op", sim_time=3.0) as sp:
            pass
        assert sp.sim_duration_s == 0.0


class TestNesting:
    def test_children_attach_to_enclosing_span(self):
        tracer = Tracer()
        with tracer.span("request") as root:
            with tracer.span("decision"):
                pass
            with tracer.span("execute"):
                with tracer.span("segment"):
                    pass
        assert [c.name for c in root.children] == ["decision", "execute"]
        assert [c.name for c in root.children[1].children] == ["segment"]

    def test_only_roots_reach_finished(self):
        tracer = Tracer()
        with tracer.span("request"):
            with tracer.span("inner"):
                pass
        assert [sp.name for sp in tracer.finished] == ["request"]

    def test_active_tracks_the_stack(self):
        tracer = Tracer()
        assert tracer.active is None
        with tracer.span("a") as a:
            assert tracer.active is a
            with tracer.span("b") as b:
                assert tracer.active is b
            assert tracer.active is a
        assert tracer.active is None

    def test_exception_annotates_and_unwinds(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("request"):
                with tracer.span("inner"):
                    raise RuntimeError("boom")
        assert tracer.active is None
        root = tracer.finished[-1]
        assert root.attrs["error"] == "RuntimeError"

    def test_annotate_and_attrs_via_span_kwargs(self):
        tracer = Tracer()
        with tracer.span("request", request=3) as sp:
            sp.annotate(cache_hit=True)
        assert sp.attrs == {"request": 3, "cache_hit": True}

    def test_to_dict_roundtrips_tree(self):
        tracer = Tracer()
        with tracer.span("request", sim_time=0.0) as root:
            with tracer.span("inner", sim_time=0.0) as sp:
                sp.set_sim_end(0.1)
            root.set_sim_end(0.2)
        d = root.to_dict()
        assert d["name"] == "request"
        assert d["sim_duration_s"] == pytest.approx(0.2)
        assert d["children"][0]["name"] == "inner"


class TestBoundedBuffer:
    def test_oldest_roots_dropped_and_counted(self):
        tracer = Tracer(max_finished=3)
        for i in range(5):
            with tracer.span("r", request=i):
                pass
        assert len(tracer.finished) == 3
        assert tracer.dropped == 2
        assert [sp.attrs["request"] for sp in tracer.finished] == [2, 3, 4]

    def test_clear_resets_everything(self):
        tracer = Tracer(max_finished=1)
        for _ in range(3):
            with tracer.span("r"):
                pass
        tracer.clear()
        assert tracer.finished == [] and tracer.dropped == 0

    def test_invalid_max_finished(self):
        with pytest.raises(ValueError):
            Tracer(max_finished=0)


class TestNullTracer:
    def test_shared_span_no_allocation(self):
        """Every span() call returns the same immutable no-op object."""
        a = NULL_TRACER.span("x", sim_time=1.0, attr=1)
        b = NULL_TRACER.span("y")
        assert a is b is _SHARED_NULL_SPAN

    def test_null_span_api_is_inert(self):
        with NULL_TRACER.span("x") as sp:
            sp.annotate(a=1)
            sp.add_sim(1.0)
            sp.set_sim_end(2.0)
        assert sp.sim_duration_s == 0.0
        assert sp.wall_duration_s == 0.0
        assert NULL_TRACER.finished == []
        assert NULL_TRACER.active is None

    def test_enabled_flags(self):
        assert Tracer().enabled is True
        assert NullTracer().enabled is False
