"""The record/replay capture layer: canonical JSONL recordings."""

import io
import json
from types import SimpleNamespace

import numpy as np
import pytest

from repro.telemetry import (RequestTimeline, Tracer, SCHEMA_VERSION,
                             Recording, RunRecorder, read_recordings,
                             write_recordings)


def _fake_request(**overrides):
    """A RequestRecord-shaped object with numpy-typed fields (the
    recorder must coerce them to plain scalars)."""
    fields = dict(arrival=np.float64(0.1), start=np.float64(0.2),
                  finish=np.float64(0.5), inference_s=np.float64(0.25),
                  decision_s=np.float64(0.04), switch_s=np.float64(0.01),
                  satisfied=np.bool_(True), outcome="ok",
                  retries=np.int64(0), failovers=np.int64(0))
    fields.update(overrides)
    return SimpleNamespace(**fields)


def _fake_condition():
    return SimpleNamespace(bandwidths_mbps=(np.float64(100.0), 80.0),
                           delays_ms=(10.0, np.float64(20.0)))


def _fake_stats():
    return SimpleNamespace(
        records=[None] * 3,
        throughput_rps=12.5,
        percentile_ms=lambda q: float(q),
        mean_queue_wait_ms=4.0,
        slo_compliance=1.0,
        completion_rate=1.0,
        outcome_counts=lambda: {"ok": 3, "retried": 0,
                                "degraded": 0, "failed": 0})


def _populated_recorder():
    rec = RunRecorder("serving_load", variant="fifo", config={"seed": 0})
    # deliberately interleaved out of canonical order
    rec.on_decision(0.0, "evolutionary", 0.04, False)
    rec.on_request(0, _fake_request())
    rec.on_condition(0.0, 0, _fake_condition())
    rec.on_request(1, _fake_request(arrival=0.3, start=0.5, finish=0.8,
                                    satisfied=np.bool_(False)))
    rec.on_decision(0.3, "cache", 0.0, True)
    rec.finish(_fake_stats())
    return rec


class TestRunRecorder:
    def test_records_in_canonical_order(self):
        kinds = [r["record"] for r in _populated_recorder().records()]
        assert kinds == ["run-header", "condition", "decision", "decision",
                         "request", "request", "summary"]

    def test_header_carries_schema_and_identity(self):
        head = next(_populated_recorder().records())
        assert head["schema"] == SCHEMA_VERSION
        assert head["scenario"] == "serving_load"
        assert head["variant"] == "fifo"
        assert head["config"] == {"seed": 0}

    def test_numpy_fields_coerced_to_plain_scalars(self):
        rec = _populated_recorder()
        for record in rec.records():
            for v in record.values():
                assert not isinstance(v, np.generic), (record, v)
        req = rec.requests[0]
        assert type(req["arrival"]) is float
        assert type(req["satisfied"]) is bool
        assert type(req["retries"]) is int

    def test_request_batch_membership_recorded(self):
        rec = RunRecorder("serving_load")
        rec.on_request(0, _fake_request())
        rec.on_request(1, _fake_request(), batch=np.int64(2))
        assert rec.requests[0]["batch"] is None
        assert rec.requests[1]["batch"] == 2

    def test_summary_aggregates(self):
        rec = _populated_recorder()
        assert rec.summary["num_requests"] == 3
        assert rec.summary["p95_ms"] == 95.0
        assert rec.summary["outcomes"]["ok"] == 3

    def test_recording_freezes_the_run(self):
        frozen = _populated_recorder().recording()
        assert isinstance(frozen, Recording)
        assert frozen.scenario == "serving_load"
        assert frozen.variant == "fifo"
        assert len(frozen.requests) == 2
        assert frozen.summary is not None


class TestCaptureTimelines:
    def _timeline(self):
        tracer = Tracer()
        with tracer.span("request", sim_time=0.0, request=4,
                         satisfied=np.bool_(False)) as root:
            with tracer.span("decision", sim_time=0.0) as sp:
                sp.add_sim(0.02)
            root.set_sim_end(0.1)
        return RequestTimeline.from_span(tracer.finished[-1], request_id=4)

    def test_simulated_clock_only(self):
        """Wall-clock durations are host-dependent; a byte-stable
        recording must never contain them."""
        rec = RunRecorder("serving_load")
        rec.capture_timelines([self._timeline()])
        (tl,) = rec.timelines
        assert tl["request_id"] == 4
        for ev in tl["events"]:
            assert "wall_duration_s" not in ev
            assert not any("wall" in k for k in ev)

    def test_attrs_coerced(self):
        rec = RunRecorder("serving_load")
        rec.capture_timelines([self._timeline()])
        attrs = rec.timelines[0]["attrs"]
        assert attrs["satisfied"] is False
        assert type(attrs["request"]) is int


class TestStreamRoundTrip:
    def test_write_then_read_recovers_groups(self):
        buf = io.StringIO()
        n = write_recordings(buf, [_populated_recorder()])
        assert n == len(buf.getvalue().strip().split("\n"))
        buf.seek(0)
        (rec,) = read_recordings(buf)
        assert rec.scenario == "serving_load"
        assert len(rec.conditions) == 1
        assert len(rec.decisions) == 2
        assert len(rec.requests) == 2
        assert rec.summary["num_requests"] == 3

    def test_writes_are_byte_deterministic(self):
        bufs = []
        for _ in range(2):
            buf = io.StringIO()
            write_recordings(buf, [_populated_recorder()])
            bufs.append(buf.getvalue())
        assert bufs[0] == bufs[1]
        # canonical JSON: sorted keys, no whitespace
        first = bufs[0].split("\n")[0]
        keys = list(json.loads(first))
        assert keys == sorted(keys)
        assert ": " not in first and ", " not in first

    def test_recording_reemits_canonically(self):
        """Recorder -> stream -> Recording -> stream is the identity."""
        direct = io.StringIO()
        write_recordings(direct, [_populated_recorder()])
        direct.seek(0)
        reread = io.StringIO()
        write_recordings(reread, read_recordings(direct))
        assert direct.getvalue() == reread.getvalue()

    def test_multiple_runs_split_on_headers(self):
        buf = io.StringIO()
        a = _populated_recorder()
        b = RunRecorder("serving_load", variant="batched")
        b.on_request(0, _fake_request())
        write_recordings(buf, [a, b])
        buf.seek(0)
        recs = read_recordings(buf)
        assert [r.variant for r in recs] == ["fifo", "batched"]
        assert len(recs[1].requests) == 1

    def test_path_round_trip(self, tmp_path):
        out = tmp_path / "run.jsonl"
        write_recordings(str(out), [_populated_recorder()])
        (rec,) = read_recordings(str(out))
        assert rec.variant == "fifo"


class TestSchemaEvolution:
    def test_newer_schema_refused(self):
        line = json.dumps({"record": "run-header",
                           "schema": SCHEMA_VERSION + 1,
                           "scenario": "serving_load"})
        with pytest.raises(ValueError, match="newer"):
            read_recordings(io.StringIO(line + "\n"))

    def test_record_before_header_refused(self):
        line = json.dumps({"record": "request", "id": 0})
        with pytest.raises(ValueError, match="before any run-header"):
            read_recordings(io.StringIO(line + "\n"))

    def test_unknown_record_kinds_skipped(self):
        lines = [
            json.dumps({"record": "run-header", "schema": SCHEMA_VERSION,
                        "scenario": "serving_load", "variant": "x",
                        "config": {}}),
            json.dumps({"record": "frobnicate", "mystery": True}),
            json.dumps({"record": "request", "id": 0, "arrival": 0.0,
                        "start": 0.0, "finish": 0.1, "inference_s": 0.1,
                        "decision_s": 0.0, "switch_s": 0.0,
                        "satisfied": True, "outcome": "ok", "retries": 0,
                        "failovers": 0, "batch": None}),
        ]
        (rec,) = read_recordings(io.StringIO("\n".join(lines) + "\n"))
        assert len(rec.requests) == 1

    def test_blank_lines_tolerated(self):
        buf = io.StringIO()
        write_recordings(buf, [_populated_recorder()])
        padded = "\n" + buf.getvalue().replace("\n", "\n\n")
        (rec,) = read_recordings(io.StringIO(padded))
        assert len(rec.requests) == 2
