"""JSONL, Prometheus text format, and the console report."""

import io
import json
import re

import numpy as np
import pytest

from repro.telemetry import (MetricsRegistry, RequestTimeline, Telemetry,
                             Tracer, console_report, jsonl_records,
                             prometheus_text, write_jsonl)


def _populated_registry():
    reg = MetricsRegistry()
    reg.counter("requests_total", help="requests served").inc(10)
    reg.counter("bytes_total", link="0-1").inc(2048)
    reg.gauge("slo_compliance", help="running compliance").set(0.95)
    h = reg.histogram("e2e_s", help="end-to-end latency")
    for v in (0.01, 0.02, 0.05, 0.1):
        h.observe(v)
    return reg


def _timeline(request=0):
    tracer = Tracer()
    with tracer.span("request", sim_time=0.0, request=request) as root:
        with tracer.span("decision", sim_time=0.0) as sp:
            sp.add_sim(0.02)
        root.set_sim_end(0.1)
    return RequestTimeline.from_span(tracer.finished[-1],
                                     request_id=request)


class TestJsonl:
    def test_every_line_parses_and_types_are_tagged(self):
        buf = io.StringIO()
        n = write_jsonl(buf, _populated_registry(), [_timeline()])
        lines = buf.getvalue().strip().split("\n")
        assert len(lines) == n == 5  # 4 metrics + 1 timeline
        records = [json.loads(line) for line in lines]
        kinds = {r["record"] for r in records}
        assert kinds == {"metric", "timeline"}

    def test_histogram_record_carries_quantiles(self):
        recs = list(jsonl_records(_populated_registry()))
        histo = next(r for r in recs if r["type"] == "histogram")
        assert set(histo["quantiles"]) == {"0.5", "0.95", "0.99"}
        assert histo["count"] == 4

    def test_writes_to_path(self, tmp_path):
        out = tmp_path / "telemetry.jsonl"
        n = write_jsonl(str(out), _populated_registry())
        assert n == 4
        assert len(out.read_text().strip().split("\n")) == 4

    def test_numpy_scalars_in_attrs_serialize(self):
        tracer = Tracer()
        with tracer.span("request", satisfied=np.bool_(True),
                         lat=np.float64(0.25)):
            pass
        tl = RequestTimeline.from_span(tracer.finished[-1])
        buf = io.StringIO()
        write_jsonl(buf, MetricsRegistry(), [tl])
        attrs = json.loads(buf.getvalue())["attrs"]
        assert attrs == {"satisfied": True, "lat": 0.25}


# Prometheus exposition grammar: one sample per non-comment line.
_SAMPLE = re.compile(
    r'^[a-zA-Z_:][a-zA-Z0-9_:]*'                       # metric name
    r'(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"'               # first label
    r'(,[a-zA-Z_][a-zA-Z0-9_]*="[^"]*")*\})?'          # more labels
    r' -?[0-9.eE+-]+(inf|nan)?$')                      # value
_COMMENT = re.compile(r"^# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]* .+$")


class TestPrometheusText:
    def test_every_line_matches_the_exposition_grammar(self):
        text = prometheus_text(_populated_registry())
        assert text.endswith("\n")
        for line in text.strip().split("\n"):
            assert _SAMPLE.match(line) or _COMMENT.match(line), line

    def test_counter_sample_with_labels(self):
        text = prometheus_text(_populated_registry())
        assert 'bytes_total{link="0-1"} 2048' in text

    def test_histogram_exports_as_summary(self):
        text = prometheus_text(_populated_registry())
        assert "# TYPE e2e_s summary" in text
        assert 'e2e_s{quantile="0.5"}' in text
        assert "e2e_s_count 4" in text
        assert "e2e_s_sum" in text

    def test_headers_emitted_once_per_family(self):
        reg = MetricsRegistry()
        reg.counter("bytes_total", link="0-1")
        reg.counter("bytes_total", link="0-2")
        text = prometheus_text(reg)
        assert text.count("# TYPE bytes_total counter") == 1

    def test_bad_names_sanitized(self):
        reg = MetricsRegistry()
        reg.counter("weird-name.total").inc()
        text = prometheus_text(reg)
        assert "weird_name_total 1" in text

    def test_empty_registry_is_empty_string(self):
        assert prometheus_text(MetricsRegistry()) == ""


class TestConsoleReport:
    def test_sections_present(self):
        report = console_report(_populated_registry(), [_timeline()])
        assert "== telemetry report ==" in report
        assert "-- counters --" in report
        assert "-- gauges --" in report
        assert "-- histograms" in report
        assert "-- timelines" in report

    def test_timeline_cap(self):
        tls = [_timeline(i) for i in range(5)]
        report = console_report(_populated_registry(), tls,
                                show_timelines=2)
        assert "showing 2" in report
        assert "request 1:" in report and "request 2:" not in report

    def test_max_timelines_alias_deprecated_but_working(self):
        """``max_timelines`` collided with the Telemetry retention cap
        of the same name; it must warn yet keep its old meaning."""
        tls = [_timeline(i) for i in range(5)]
        with pytest.warns(DeprecationWarning, match="show_timelines"):
            report = console_report(_populated_registry(), tls,
                                    max_timelines=2)
        assert "showing 2" in report

    def test_show_timelines_does_not_warn(self):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            console_report(_populated_registry(), [_timeline()],
                           show_timelines=1)

    def test_collect_hooks_fire_for_reports(self):
        """Snapshot gauges registered via hooks appear up to date."""
        tel = Telemetry()
        g = tel.registry.gauge("entries")
        tel.registry.add_collect_hook(lambda: g.set(3.0))
        assert "3" in console_report(tel.registry)
