"""End-to-end integration: the three stages composed.

Stage 1 (train a real tiny supernet) -> Stage 2 (train SUPREME on the
tiny executable environment) -> Stage 3 (deploy the facade with the RL
decision engine and actually execute partitioned inference).
"""

import numpy as np
import pytest

from repro.core import SLO, Murmuration, RLDecisionEngine
from repro.devices import desktop_gtx1080, rpi4
from repro.nas import (MBV3_SPACE, Supernet, SupernetTrainer,
                       SyntheticImageDataset, TrainConfig, max_arch,
                       tiny_space)
from repro.netsim import (NetworkCondition, TraceConfig, random_walk_trace)
from repro.rl import (EnvConfig, MurmurationEnv, SupremeConfig,
                      SupremeTrainer)


@pytest.fixture(scope="module")
def devices():
    return [rpi4(), desktop_gtx1080()]


@pytest.fixture(scope="module")
def trained_policy_env(devices):
    env = MurmurationEnv(MBV3_SPACE, devices,
                         EnvConfig(slo_kind="latency", slo_range=(0.05, 0.5)))
    trainer = SupremeTrainer(env, SupremeConfig(
        total_steps=320, rollout_batch=16, eval_every=10 ** 9, seed=0))
    trainer.train(eval_tasks=[], eval_mask=np.zeros(0, dtype=bool))
    return env, trainer.policy


class TestPolicyDrivenRuntime:
    def test_facade_with_rl_engine(self, devices, trained_policy_env):
        env, policy = trained_policy_env
        system = Murmuration(
            MBV3_SPACE, devices, NetworkCondition((300.0,), (10.0,)),
            RLDecisionEngine(env, policy), slo=SLO.latency(0.4), seed=0)
        rec = system.infer()
        assert rec.latency_s <= 0.4
        assert rec.strategy is not None

    def test_trace_replay_compliance(self, devices, trained_policy_env):
        """Serve requests over a drifting network; the adaptive system
        keeps a high compliance rate."""
        env, policy = trained_policy_env
        system = Murmuration(
            MBV3_SPACE, devices, NetworkCondition((300.0,), (10.0,)),
            RLDecisionEngine(env, policy), slo=SLO.latency(0.45), seed=1)
        trace = random_walk_trace(TraceConfig(
            num_remote=1, bw_range=(80.0, 400.0), delay_range=(5.0, 60.0),
            steps=15, seed=2))
        served = 0
        for cond in trace:
            system.update_condition(cond)
            try:
                system.infer()
                served += 1
            except RuntimeError:
                pass
        assert served >= 10
        assert system.compliance_rate() >= 0.7

    def test_cache_accelerates_stable_conditions(self, devices,
                                                 trained_policy_env):
        env, policy = trained_policy_env
        system = Murmuration(
            MBV3_SPACE, devices, NetworkCondition((300.0,), (10.0,)),
            RLDecisionEngine(env, policy), slo=SLO.latency(0.4),
            use_predictor=False, monitor_noise=0.0, seed=3)
        for _ in range(5):
            system.infer()
        assert system.cache.hits >= 3


class TestExecutableEndToEnd:
    def test_train_then_execute_partitioned(self):
        """Full pipeline on the tiny executable profile."""
        space = tiny_space()
        net = Supernet(space, seed=4)
        ds = SyntheticImageDataset(resolution=32, train_size=64, val_size=32,
                                   seed=4, noise=0.4)
        SupernetTrainer(net, ds, TrainConfig(
            warmup_steps=20, steps_per_phase=8, batch_size=16)).train()

        from repro.core import SearchDecisionEngine
        devices = [rpi4(), rpi4(), rpi4()]
        system = Murmuration(
            space, devices, NetworkCondition((200.0, 200.0), (5.0, 5.0)),
            SearchDecisionEngine(space, devices, n_random_archs=4),
            slo=SLO.latency(0.5), supernet=net, seed=5)
        x, y = ds.val_batch(resolution=32, limit=8)
        # force a strategy whose arch matches the input resolution
        rec = system.infer(x=None)  # decide first (plan-only price)
        if rec.strategy.arch.resolution != 32:
            pytest.skip("engine picked the 16px submodel for this SLO")
        rec2 = system.infer(x=x)
        assert rec2.logits is not None
        assert rec2.logits.shape == (8, space.num_classes)
        assert system.reconfig.active_arch == rec2.strategy.arch
