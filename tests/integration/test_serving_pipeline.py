"""Integration: the serving loop over an adaptive system on a trace,
energy accounting of the chosen strategies, and plan refinement feeding
the strategy cache."""

import numpy as np
import pytest

from repro.core import SLO, Murmuration, SearchDecisionEngine, Strategy
from repro.devices import desktop_gtx1080, energy_of_report, rpi4
from repro.nas import MBV3_SPACE, build_graph
from repro.netsim import (Cluster, NetworkCondition, TraceConfig,
                          random_walk_trace)
from repro.partition import refine_plan, simulate_latency
from repro.runtime import InferenceServer


@pytest.fixture(scope="module")
def devices():
    return [rpi4(), desktop_gtx1080()]


class TestServingIntegration:
    def test_served_compliance_on_trace(self, devices):
        system = Murmuration(
            MBV3_SPACE, devices, NetworkCondition((200.0,), (20.0,)),
            SearchDecisionEngine(MBV3_SPACE, devices, n_random_archs=6),
            slo=SLO.latency_ms(300), use_predictor=False,
            monitor_noise=0.02, seed=0)
        trace = random_walk_trace(TraceConfig(
            num_remote=1, bw_range=(60.0, 350.0), delay_range=(5.0, 50.0),
            steps=20, seed=1))
        stats = InferenceServer(system, arrival_rate_hz=1.0, seed=2).run(
            num_requests=20, condition_trace=trace, trace_period_s=1.0)
        assert stats.slo_compliance >= 0.9
        assert stats.percentile_ms(50) > 0

    def test_energy_of_served_strategies(self, devices):
        """Strategies the system actually served can be priced for
        energy from the same simulator output."""
        system = Murmuration(
            MBV3_SPACE, devices, NetworkCondition((300.0,), (10.0,)),
            SearchDecisionEngine(MBV3_SPACE, devices, n_random_archs=4),
            slo=SLO.latency_ms(200), use_predictor=False, seed=3)
        rec = system.infer()
        graph = build_graph(rec.strategy.arch, MBV3_SPACE)
        rep = simulate_latency(graph, rec.strategy.plan, system.cluster)
        er = energy_of_report(rep, devices)
        assert er.total_j > 0
        assert rep.total_s == pytest.approx(rec.latency_s, rel=0.2)

    def test_refined_strategy_into_cache(self, devices):
        """Offline plan refinement produces a strategy the cache can
        serve — the 'polish before caching' workflow."""
        condition = NetworkCondition((250.0,), (15.0,))
        cluster = Cluster(devices, condition)
        engine = SearchDecisionEngine(MBV3_SPACE, devices, n_random_archs=4)
        slo = SLO.latency_ms(250)
        raw = engine.decide(slo, condition).strategy
        graph = build_graph(raw.arch, MBV3_SPACE)
        plan, latency = refine_plan(graph, raw.plan, cluster, max_passes=1)
        assert latency <= raw.expected_latency_s + 1e-9

        system = Murmuration(MBV3_SPACE, devices, condition, engine,
                             slo=slo, use_predictor=False,
                             monitor_noise=0.0, seed=4)
        polished = Strategy(raw.arch, plan, latency, raw.expected_accuracy)
        system.cache.put(slo, condition, polished)
        rec = system.infer()
        assert rec.cache_hit
        assert rec.latency_s <= raw.expected_latency_s + 1e-9
