"""The four controllers: guards, feedback rules, and convergence."""

from types import SimpleNamespace

import pytest

from repro.control import (AdmissionController, BatchPolicyController,
                           CacheGranularityController, ControlLoop,
                           ControlSnapshot, PrecomputeScheduler)
from repro.core import StrategyCache
from repro.netsim import NetworkCondition
from repro.runtime import BatchPolicy


def _snap(t=1.0, hits=0, misses=0, rel_err=0.0, requests=0,
          mean_service=0.0, p95=0.0, queue=0, slo_s=0.3, condition=None):
    return ControlSnapshot(
        t=t, cache={}, window_hits=hits, window_misses=misses,
        window_requests=requests, window_satisfied=requests,
        window_mean_service_s=mean_service, window_p95_e2e_s=p95,
        queue_depth=queue, slo_s=slo_s, condition=condition,
        monitor_bw_rel_err=rel_err, monitor_delay_rel_err=rel_err)


class _FakeSystem:
    def __init__(self, min_latency_s=0.05):
        self.cache = StrategyCache()
        self.precomputed = []
        self._min_latency_s = min_latency_s

    def precompute(self, targets):
        self.precomputed.append(list(targets))
        return len(targets)

    def min_strategy(self):
        return SimpleNamespace(expected_latency_s=self._min_latency_s)


@pytest.mark.parametrize("ctor", [
    lambda: CacheGranularityController(hit_lo=0.9, hit_hi=0.5),
    lambda: CacheGranularityController(hit_lo=-0.1),
    lambda: CacheGranularityController(factor=1.0),
    lambda: CacheGranularityController(min_window=0),
    lambda: BatchPolicyController(min_batch=0),
    lambda: BatchPolicyController(min_batch=8, max_batch=4),
    lambda: BatchPolicyController(depth_per_slot=0.0),
    lambda: BatchPolicyController(headroom=1.0),
    lambda: AdmissionController(margin=0.0),
    lambda: AdmissionController(ewma_alpha=0.0),
    lambda: AdmissionController(ewma_alpha=1.1),
    lambda: PrecomputeScheduler(horizon_s=0.0),
    lambda: PrecomputeScheduler(max_cells=0),
])
def test_constructor_guards_raise_value_error(ctor):
    with pytest.raises(ValueError):
        ctor()


# hit-rate signals: 1/9 = 11% (overload), 9/1 = 90% (healthy)
_LOW = dict(hits=1, misses=9)
_HIGH = dict(hits=9, misses=1)


class TestCacheGranularity:
    def _loop(self):
        return ControlLoop([]).attach(system=_FakeSystem())

    def test_holds_without_enough_evidence(self):
        c = CacheGranularityController(min_window=8)
        assert c.update(_snap(hits=2, misses=2), self._loop()) is None

    def test_holds_without_a_system(self):
        c = CacheGranularityController()
        assert c.update(_snap(**_LOW), ControlLoop([])) is None

    def test_low_hit_rate_coarsens_both_steps(self):
        loop = self._loop()
        c = CacheGranularityController(factor=1.5)
        msg = c.update(_snap(**_LOW), loop)
        assert msg is not None and msg.startswith("coarsen")
        cache = loop.system.cache
        assert cache.bw_step == pytest.approx(37.5)
        assert cache.delay_step == pytest.approx(15.0)

    def test_high_hit_rate_with_low_error_refines(self):
        loop = self._loop()
        c = CacheGranularityController(factor=1.5, rel_err_budget=0.25)
        msg = c.update(_snap(rel_err=0.1, **_HIGH), loop)
        assert msg is not None and msg.startswith("refine")
        assert loop.system.cache.bw_step == pytest.approx(25 / 1.5)

    def test_high_error_blocks_refinement(self):
        loop = self._loop()
        c = CacheGranularityController(rel_err_budget=0.25)
        assert c.update(_snap(rel_err=0.5, **_HIGH), loop) is None

    def test_dead_band_holds(self):
        loop = self._loop()
        c = CacheGranularityController(hit_lo=0.4, hit_hi=0.85)
        assert c.update(_snap(hits=6, misses=4), loop) is None

    def test_settles_at_coarse_clamp_under_sustained_misses(self):
        loop = self._loop()
        c = CacheGranularityController(max_bw_step=200.0,
                                       max_delay_step=80.0)
        for _ in range(20):
            c.update(_snap(**_LOW), loop)
        cache = loop.system.cache
        assert cache.bw_step == 200.0 and cache.delay_step == 80.0
        assert c.update(_snap(**_LOW), loop) is None  # settled

    def test_settles_at_fine_clamp_under_sustained_hits(self):
        loop = self._loop()
        c = CacheGranularityController(min_bw_step=5.0, min_delay_step=2.0)
        for _ in range(20):
            c.update(_snap(rel_err=0.0, **_HIGH), loop)
        cache = loop.system.cache
        assert cache.bw_step == 5.0 and cache.delay_step == 2.0
        assert c.update(_snap(rel_err=0.0, **_HIGH), loop) is None

    def test_failed_refinement_latches_a_floor(self):
        """refine -> hit-rate collapse -> coarsen must latch the finer
        level out of reach: the next healthy window may NOT re-refine."""
        loop = self._loop()
        cache = loop.system.cache
        c = CacheGranularityController(factor=1.5)
        assert c.update(_snap(**_HIGH), loop).startswith("refine")
        assert c.update(_snap(**_LOW), loop).startswith("coarsen")
        assert c.refine_floor_bw == pytest.approx(25.0)
        assert c.update(_snap(**_HIGH), loop) is None  # floor holds
        assert cache.bw_step == pytest.approx(25.0)
        assert cache.delay_step == pytest.approx(10.0)

    def test_adversarial_alternation_settles(self):
        """Even a worst-case alternating signal cannot oscillate forever:
        every refine->coarsen round trip ratchets the floor, so the
        reachable step set shrinks to a fixed point."""
        loop = self._loop()
        cache = loop.system.cache
        c = CacheGranularityController()
        acted_at = []
        for i in range(120):
            snap = _snap(**(_HIGH if i % 2 == 0 else _LOW))
            if c.update(snap, loop) is not None:
                acted_at.append(i)
        assert acted_at, "controller never acted at all"
        assert max(acted_at) < 60, "still oscillating after 60 updates"
        final = (cache.bw_step, cache.delay_step)
        for i in range(10):
            assert c.update(_snap(**(_HIGH if i % 2 else _LOW)), loop) is None
        assert (cache.bw_step, cache.delay_step) == final


class TestBatchPolicy:
    def _loop(self, max_batch=4):
        server = SimpleNamespace(policy=BatchPolicy(max_batch=max_batch))
        return ControlLoop([]).attach(server=server), server

    def test_deep_backlog_doubles_the_cap(self):
        loop, server = self._loop(max_batch=4)
        c = BatchPolicyController(depth_per_slot=2.0)
        msg = c.update(_snap(queue=20), loop)
        assert msg is not None and msg.startswith("grow")
        assert server.policy.max_batch == 8

    def test_growth_respects_the_cap(self):
        loop, server = self._loop(max_batch=8)
        c = BatchPolicyController(max_batch=8)
        assert c.update(_snap(queue=100), loop) is None
        assert server.policy.max_batch == 8

    def test_idle_queue_with_headroom_halves_the_cap(self):
        loop, server = self._loop(max_batch=8)
        c = BatchPolicyController(headroom=0.5)
        msg = c.update(_snap(queue=0, requests=5, p95=0.05, slo_s=0.3),
                       loop)
        assert msg is not None and msg.startswith("shrink")
        assert server.policy.max_batch == 4

    def test_dead_band_between_grow_and_shrink(self):
        loop, server = self._loop(max_batch=4)
        c = BatchPolicyController()
        # queue neither deep (> 8) nor near-empty (<= 1): hold
        assert c.update(_snap(queue=5, requests=5, p95=0.05), loop) is None
        assert server.policy.max_batch == 4

    def test_no_shrink_without_a_request_window(self):
        loop, _ = self._loop(max_batch=8)
        c = BatchPolicyController()
        assert c.update(_snap(queue=0, requests=0, p95=0.0), loop) is None

    def test_ignores_non_batching_servers(self):
        c = BatchPolicyController()
        assert c.update(_snap(queue=100), ControlLoop([])) is None


class TestAdmission:
    def _loop(self, min_latency_s=0.05):
        return ControlLoop([]).attach(
            system=_FakeSystem(min_latency_s=min_latency_s))

    def test_serves_everything_without_evidence(self):
        c = AdmissionController()
        assert c.admit(0.0, 99.0, 0.3, self._loop()) == "serve"
        assert c.shed == 0 and c.degraded == 0

    def test_update_tracks_an_ewma_of_service_time(self):
        c = AdmissionController(ewma_alpha=0.3)
        c.update(_snap(mean_service=0.2), None)
        assert c.service_estimate_s == pytest.approx(0.2)
        c.update(_snap(mean_service=0.1), None)
        assert c.service_estimate_s == pytest.approx(0.3 * 0.1 + 0.7 * 0.2)
        c.update(_snap(mean_service=0.0), None)  # empty window: hold
        assert c.service_estimate_s == pytest.approx(0.17)

    def test_triage_serve_degrade_shed_by_remaining_budget(self):
        """margin*slo = 0.255; est 0.2, degraded est 0.05."""
        loop = self._loop(min_latency_s=0.05)
        c = AdmissionController(margin=0.85)
        c.update(_snap(mean_service=0.2), loop)
        assert c.admit(0.0, 0.0, 0.3, loop) == "serve"     # 0.2 fits
        assert c.admit(0.0, 0.1, 0.3, loop) == "degrade"   # only 0.05 fits
        assert c.admit(0.0, 0.25, 0.3, loop) == "shed"     # nothing fits
        assert c.degraded == 1 and c.shed == 1


class TestPrecompute:
    def _loop(self):
        return ControlLoop([]).attach(system=_FakeSystem())

    def test_first_tick_only_baselines(self):
        loop = self._loop()
        c = PrecomputeScheduler()
        cond = NetworkCondition((100.0,), (10.0,))
        assert c.update(_snap(t=1.0, condition=cond), loop) is None
        assert loop.system.precomputed == []

    def test_drift_precomputes_extrapolated_cells(self):
        loop = self._loop()
        c = PrecomputeScheduler(horizon_s=2.0, max_cells=2)
        c.update(_snap(t=1.0, condition=NetworkCondition((100.0,), (10.0,))),
                 loop)
        msg = c.update(
            _snap(t=2.0, condition=NetworkCondition((120.0,), (12.0,))),
            loop)
        assert msg is not None and "precomputed 2" in msg
        assert c.computed == 2
        (targets,) = loop.system.precomputed
        # drift +20 Mbps/s, +2 ms/s, extrapolated 1s and 2s ahead
        assert targets[0].bandwidths_mbps[0] == pytest.approx(140.0)
        assert targets[1].bandwidths_mbps[0] == pytest.approx(160.0)
        assert targets[1].delays_ms[0] == pytest.approx(16.0)

    def test_noise_below_min_drift_holds(self):
        loop = self._loop()
        c = PrecomputeScheduler(min_drift=0.02)
        c.update(_snap(t=1.0, condition=NetworkCondition((100.0,), (10.0,))),
                 loop)
        assert c.update(
            _snap(t=2.0, condition=NetworkCondition((100.5,), (10.0,))),
            loop) is None
        assert loop.system.precomputed == []
