"""ControlLoop: cadence, snapshot windows, admission plumbing."""

from types import SimpleNamespace

import pytest

from repro.control import ControlAction, ControlLoop, Controller
from repro.core import SLO, StrategyCache
from repro.netsim import NetworkCondition
from repro.runtime import RequestRecord, ServingStats
from repro.telemetry import Telemetry


class _Recorder(Controller):
    """Records every snapshot; returns a canned description (or None)."""

    name = "recorder"

    def __init__(self, description=None):
        self.snapshots = []
        self.description = description

    def update(self, snapshot, loop):
        self.snapshots.append(snapshot)
        return self.description


class _FakeMonitor:
    def __init__(self, condition):
        self._condition = condition
        self.history = []
        self._smoothed_bw = {}
        self._smoothed_delay = {}

    def estimate(self):
        return self._condition


class _FakeSystem:
    """Just enough of the Murmuration facade for a snapshot."""

    def __init__(self, slo=None, min_latency_s=0.05):
        self.cache = StrategyCache()
        self.slo = slo if slo is not None else SLO.latency(0.3)
        self.monitor = _FakeMonitor(NetworkCondition((100.0,), (10.0,)))
        self._min_latency_s = min_latency_s

    def min_strategy(self):
        return SimpleNamespace(expected_latency_s=self._min_latency_s)


def _record(arrival, start, finish, outcome="ok", satisfied=True):
    service = finish - start
    return RequestRecord(arrival=arrival, start=start, finish=finish,
                         inference_s=service, decision_s=0.0, switch_s=0.0,
                         satisfied=satisfied, outcome=outcome)


class TestCadence:
    def test_does_not_fire_before_period(self):
        loop = ControlLoop([_Recorder()], period_s=0.5)
        assert not loop.maybe_tick(0.0)
        assert not loop.maybe_tick(0.49)
        assert loop.ticks == 0

    def test_fires_once_per_period(self):
        loop = ControlLoop([_Recorder()], period_s=0.5)
        assert loop.maybe_tick(0.5)
        assert not loop.maybe_tick(0.6)   # same period: already fired
        assert loop.maybe_tick(1.0)
        assert loop.ticks == 2

    def test_idempotent_for_one_time(self):
        """Facade and server may both call maybe_tick at the same now."""
        loop = ControlLoop([_Recorder()], period_s=0.5)
        assert loop.maybe_tick(0.7)
        assert not loop.maybe_tick(0.7)
        assert loop.ticks == 1

    def test_late_tick_catches_up_without_bursting(self):
        """A long gap fires ONE tick, then the cadence realigns ahead of
        now — controllers never see a burst of stale back-to-back ticks."""
        loop = ControlLoop([_Recorder()], period_s=0.5)
        assert loop.maybe_tick(2.7)       # missed 5 periods: one tick
        assert loop.ticks == 1
        assert not loop.maybe_tick(2.9)   # realigned to 3.0
        assert loop.maybe_tick(3.0)

    def test_default_long_gap_fires_exactly_once(self):
        """Regression for the idle-gap semantics: with the default
        ``max_catchup=1`` a gap spanning many periods fires exactly one
        tick per maybe_tick call — never a burst — and the controller
        sees exactly one snapshot at the late now."""
        rec = _Recorder()
        loop = ControlLoop([rec], period_s=0.5)
        assert loop.maybe_tick(10.3)      # missed ~20 periods
        assert loop.ticks == 1
        assert len(rec.snapshots) == 1
        assert rec.snapshots[0].t == 10.3
        assert not loop.maybe_tick(10.4)  # realigned past now
        assert loop.maybe_tick(10.5)
        assert loop.ticks == 2

    def test_max_catchup_runs_one_tick_per_missed_period_capped(self):
        """Opting into catch-up: a long gap replays up to ``max_catchup``
        ticks in one call, then realigns the cadence ahead of now."""
        rec = _Recorder()
        loop = ControlLoop([rec], period_s=0.5, max_catchup=3)
        assert loop.maybe_tick(2.7)       # missed 5 periods: 3 ticks
        assert loop.ticks == 3
        assert len(rec.snapshots) == 3
        # every catch-up snapshot is taken at the call's now (stats are
        # only known as of the call), not at imaginary past instants
        assert all(s.t == 2.7 for s in rec.snapshots)
        assert not loop.maybe_tick(2.9)   # realigned to 3.0
        assert loop.maybe_tick(3.0)
        assert loop.ticks == 4

    def test_max_catchup_covers_small_gaps_exactly(self):
        """A gap shorter than the cap catches up one tick per elapsed
        period, no more."""
        loop = ControlLoop([_Recorder()], period_s=0.5, max_catchup=10)
        assert loop.maybe_tick(1.1)       # periods at 0.5 and 1.0
        assert loop.ticks == 2
        assert not loop.maybe_tick(1.4)
        assert loop.maybe_tick(1.5)
        assert loop.ticks == 3

    @pytest.mark.parametrize("max_catchup", [0, -1])
    def test_invalid_max_catchup_rejected(self, max_catchup):
        with pytest.raises(ValueError, match="max_catchup"):
            ControlLoop([], period_s=0.5, max_catchup=max_catchup)

    @pytest.mark.parametrize("period", [0.0, -1.0, -0.5])
    def test_invalid_period_rejected(self, period):
        with pytest.raises(ValueError, match="period_s must be positive"):
            ControlLoop([], period_s=period)

    def test_attach_is_idempotent_and_chains(self):
        loop = ControlLoop([])
        system = _FakeSystem()
        assert loop.attach(system=system) is loop
        loop.attach(server="srv")
        assert loop.system is system and loop.server == "srv"
        loop.attach()  # no-arg attach must not detach anything
        assert loop.system is system and loop.server == "srv"


class TestSnapshot:
    def test_window_deltas_cover_interval_since_last_tick(self):
        rec = _Recorder()
        system = _FakeSystem()
        loop = ControlLoop([rec], period_s=1.0).attach(system=system)
        stats = ServingStats(records=[_record(0.0, 0.0, 0.2)])
        slo, cond = SLO.latency(0.3), NetworkCondition((100.0,), (10.0,))
        system.cache.get(slo, cond)               # one serving miss
        loop.maybe_tick(1.0, stats=stats, queue_depth=3)
        snap = rec.snapshots[-1]
        assert snap.window_misses == 1 and snap.window_hits == 0
        assert snap.window_requests == 1
        assert snap.window_mean_service_s == pytest.approx(0.2)
        assert snap.queue_depth == 3
        assert snap.slo_s == pytest.approx(0.3)
        assert snap.condition == system.monitor.estimate()

        # second window sees only what happened since the first tick
        stats.records.append(_record(1.0, 1.1, 1.5, satisfied=False))
        loop.maybe_tick(2.0, stats=stats)
        snap = rec.snapshots[-1]
        assert snap.window_requests == 1 and snap.window_satisfied == 0
        assert snap.window_misses == 0

    def test_shed_and_failed_excluded_from_service_estimate(self):
        """A shed request's zero-second 'service' must not drag the
        admission controller's estimate toward zero."""
        rec = _Recorder()
        loop = ControlLoop([rec], period_s=1.0).attach(system=_FakeSystem())
        stats = ServingStats(records=[
            _record(0.0, 0.0, 0.2),
            _record(0.1, 0.1, 0.1, outcome="shed", satisfied=False),
            _record(0.2, 0.2, 0.2, outcome="failed", satisfied=False),
        ])
        loop.maybe_tick(1.0, stats=stats)
        snap = rec.snapshots[-1]
        assert snap.window_requests == 3
        assert snap.window_mean_service_s == pytest.approx(0.2)

    def test_empty_window_hit_rate_is_none(self):
        rec = _Recorder()
        loop = ControlLoop([rec], period_s=1.0)
        loop.maybe_tick(1.0)
        snap = rec.snapshots[-1]
        assert snap.window_hit_rate is None
        assert snap.window_mean_service_s == 0.0
        assert snap.condition is None and snap.slo_s is None


class TestActionsAndTelemetry:
    def test_actions_logged_with_time_and_controller(self):
        loop = ControlLoop([_Recorder(description="did a thing")],
                           period_s=0.5)
        loop.maybe_tick(0.5)
        loop.maybe_tick(1.0)
        assert loop.actions == [
            ControlAction(0.5, "recorder", "did a thing"),
            ControlAction(1.0, "recorder", "did a thing"),
        ]
        assert "2 ticks, 2 actions" in loop.summary()
        assert "recorder=2" in loop.summary()

    def test_telemetry_counts_ticks_and_actions(self):
        tel = Telemetry()
        loop = ControlLoop([_Recorder(description="x")], period_s=0.5,
                           telemetry=tel)
        loop.maybe_tick(0.5)
        loop.maybe_tick(1.0)
        reg = tel.registry
        assert reg.get("control_ticks_total").value == 2
        assert reg.get("control_actions_total",
                       controller="recorder").value == 2


class _AlwaysShed(Controller):
    name = "always-shed"

    def update(self, snapshot, loop):
        return None

    def admit(self, arrival, start, slo_s, loop):
        return "shed"


class TestAdmitPlumbing:
    def test_no_admission_controller_serves_everything(self):
        loop = ControlLoop([_Recorder()])
        assert loop.admit(0.0, 5.0, SLO.latency(0.1)) == "serve"

    def test_delegates_to_stacked_admission_controller(self):
        tel = Telemetry()
        loop = ControlLoop([_AlwaysShed()], telemetry=tel)
        assert loop.admit(0.0, 0.0, SLO.latency(0.1)) == "shed"
        assert tel.registry.get("control_admission_total",
                                verdict="shed").value == 1

    def test_accuracy_slo_is_not_actionable(self):
        """Queue wait cannot blow an accuracy SLO: always serve."""
        loop = ControlLoop([_AlwaysShed()])
        assert loop.admit(0.0, 99.0, SLO.accuracy(75.0)) == "serve"
        assert loop.admit(0.0, 99.0, None) == "serve"
