"""TenantFairnessController: per-tenant budgets at admission.

Unit-level tests drive ``admit``/``update`` directly with stub
snapshots, pinning the fairness mechanics the multi-tenant benchmark
relies on: evidence-gated triage, the decayed admitted-service ledger,
over-share shedding under pressure, and the untagged passthrough.
"""

import pytest

from repro.control import TenantFairnessController


class _Snap:
    """Just enough of a ControlSnapshot for update()."""

    def __init__(self, mean_service_s):
        self.window_mean_service_s = mean_service_s


class _MinStrategy:
    def __init__(self, latency_s):
        self.expected_latency_s = latency_s


class _System:
    def __init__(self, min_latency_s):
        self._min = _MinStrategy(min_latency_s)

    def min_strategy(self):
        return self._min


class _Loop:
    def __init__(self, system=None):
        self.system = system


def _warm(ctrl, service_s=0.1):
    """Give the controller its service-time evidence."""
    ctrl.update(_Snap(service_s), _Loop())


class TestValidation:
    @pytest.mark.parametrize("kwargs", [
        {"margin": 0.0},
        {"ewma_alpha": 0.0},
        {"ewma_alpha": 1.5},
        {"pressure": -0.1},
        {"tolerance": 0.5},
        {"decay": 0.0},
        {"weights": {"a": 0.0}},
    ])
    def test_bad_parameters_are_rejected(self, kwargs):
        with pytest.raises(ValueError):
            TenantFairnessController(**kwargs)


class TestEvidenceGate:
    def test_serves_everything_before_first_window(self):
        """No completed-request evidence -> no basis to refuse."""
        ctrl = TenantFairnessController()
        assert ctrl.admit(0.0, 10.0, 0.3, _Loop(), tenant="a") == "serve"
        assert ctrl.shed == 0

    def test_ewma_tracks_the_window_mean(self):
        ctrl = TenantFairnessController(ewma_alpha=0.5)
        ctrl.update(_Snap(0.1), _Loop())
        assert ctrl.service_estimate_s == pytest.approx(0.1)
        ctrl.update(_Snap(0.2), _Loop())
        assert ctrl.service_estimate_s == pytest.approx(0.15)
        ctrl.update(_Snap(0.0), _Loop())   # empty window: no update
        assert ctrl.service_estimate_s == pytest.approx(0.15)


class TestDeadlineTriage:
    def test_fitting_request_serves_and_charges_the_ledger(self):
        ctrl = TenantFairnessController()
        _warm(ctrl, 0.1)
        assert ctrl.admit(0.0, 0.0, 1.0, _Loop(), tenant="a") == "serve"
        assert ctrl.served_share["a"] == pytest.approx(0.1)

    def test_tight_budget_degrades_and_charges_the_cheap_path(self):
        ctrl = TenantFairnessController(margin=1.0)
        _warm(ctrl, 0.2)
        loop = _Loop(system=_System(min_latency_s=0.05))
        verdict = ctrl.admit(0.0, 0.0, 0.1, loop, tenant="a")
        assert verdict == "degrade"
        assert ctrl.degraded == 1
        assert ctrl.degraded_by_tenant == {"a": 1}
        assert ctrl.served_share["a"] == pytest.approx(0.05)

    def test_hopeless_request_sheds(self):
        ctrl = TenantFairnessController()
        _warm(ctrl, 0.5)
        verdict = ctrl.admit(0.0, 5.0, 0.3, _Loop(), tenant="a")
        assert verdict == "shed"
        assert ctrl.shed_by_tenant == {"a": 1}
        assert "a" not in ctrl.served_share   # sheds are never charged

    def test_untagged_requests_triage_deadline_only(self):
        """tenant=None: the fairness machinery must stay out of it."""
        ctrl = TenantFairnessController()
        _warm(ctrl, 0.1)
        assert ctrl.admit(0.0, 0.0, 1.0, _Loop()) == "serve"
        assert ctrl.admit(0.0, 5.0, 0.3, _Loop()) == "shed"
        assert ctrl.served_share == {}
        assert ctrl.fairness_sheds == 0


class TestFairShareEnforcement:
    #: both tenants declared up front — the fair fraction is computed
    #: over known tenants, exactly how the scenario wires it
    WEIGHTS = {"burst": 1.0, "steady": 1.0}

    def _hog(self, ctrl, tenant="burst", n=5):
        for _ in range(n):
            assert ctrl.admit(0.0, 0.0, 1.0, _Loop(),
                              tenant=tenant) == "serve"

    def test_over_share_tenant_is_shed_under_pressure_even_if_it_fits(self):
        ctrl = TenantFairnessController(weights=self.WEIGHTS, pressure=0.5)
        _warm(ctrl, 0.1)
        self._hog(ctrl)                       # burst owns the ledger
        assert ctrl.over_share("burst")
        # wait 0.2 > pressure * slo 0.15, yet the request alone would fit
        verdict = ctrl.admit(0.0, 0.2, 0.3, _Loop(), tenant="burst")
        assert verdict == "shed"
        assert ctrl.fairness_sheds == 1

    def test_within_share_tenant_is_served_under_the_same_pressure(self):
        ctrl = TenantFairnessController(weights=self.WEIGHTS, pressure=0.5)
        _warm(ctrl, 0.05)   # small enough to still fit at wait 0.2
        self._hog(ctrl)
        assert not ctrl.over_share("steady")
        assert ctrl.admit(0.0, 0.2, 0.3, _Loop(),
                          tenant="steady") == "serve"

    def test_no_pressure_no_fairness_shed(self):
        """Off-pressure the burster is triaged on its deadline alone."""
        ctrl = TenantFairnessController(weights=self.WEIGHTS, pressure=0.5)
        _warm(ctrl, 0.1)
        self._hog(ctrl)
        assert ctrl.admit(0.0, 0.0, 0.3, _Loop(),
                          tenant="burst") == "serve"
        assert ctrl.fairness_sheds == 0

    def test_weights_shift_the_fair_fraction(self):
        ctrl = TenantFairnessController(weights={"gold": 3.0,
                                                 "bronze": 1.0})
        assert ctrl._fair_fraction("gold") == pytest.approx(0.75)
        assert ctrl._fair_fraction("bronze") == pytest.approx(0.25)

    def test_ledger_decays_so_past_bursts_are_forgiven(self):
        ctrl = TenantFairnessController(weights=self.WEIGHTS, decay=0.5)
        _warm(ctrl, 0.1)
        self._hog(ctrl)
        assert ctrl.over_share("burst")
        # the other tenant serves a little, then ticks decay the ledger
        ctrl.admit(0.0, 0.0, 1.0, _Loop(), tenant="steady")
        for _ in range(8):
            ctrl.update(_Snap(0.1), _Loop())
            ctrl.admit(0.0, 0.0, 1.0, _Loop(), tenant="steady")
        assert not ctrl.over_share("burst")
