"""End-to-end admission through the serving stack.

Runs the adaptive scenario small and checks the deployment-facing
bookkeeping: every submitted request lands in exactly one bucket, shed
requests never touch the pipeline, degraded ones really got the cheap
path — and an *empty* control loop is a pure observer (byte-identical
records to ``control=None``), which is the observability half of the
control plane's zero-impact contract.
"""

import pytest

from repro.control import ControlLoop
from repro.eval.adaptive import (AdaptiveConfig, burst_arrival_process,
                                 _make_system, _trace, run_adaptive)
from repro.runtime import BatchingInferenceServer, BatchPolicy

_CFG = AdaptiveConfig(num_requests=60, trace_steps=60,
                      burst_window=(2.0, 4.0))


@pytest.fixture(scope="module")
def reports():
    return run_adaptive(_CFG)


def test_every_submitted_request_is_accounted_for(reports):
    """shed + completed + failed == submitted, both variants."""
    for rep in reports.values():
        counts = rep.stats.outcome_counts()
        completed = sum(v for k, v in counts.items()
                        if k not in ("failed", "shed"))
        total = completed + counts["failed"] + counts.get("shed", 0)
        assert total == len(rep.stats.records) == _CFG.num_requests


def test_shed_records_never_occupied_the_pipeline(reports):
    shed = [r for r in reports["controlled"].stats.records
            if r.outcome == "shed"]
    assert shed, "scenario is sized to force shedding"
    for r in shed:
        assert r.start == r.finish == r.arrival
        assert r.inference_s == r.decision_s == r.switch_s == 0.0
        assert not r.satisfied


def test_degraded_requests_skip_the_decision_engine(reports):
    """An admission-degraded request serves the min strategy with zero
    decision cost — that is the whole point of degrading it."""
    degraded = [r for r in reports["controlled"].stats.records
                if r.outcome == "degraded"]
    assert degraded, "scenario is sized to force degradation"
    for r in degraded:
        assert r.decision_s == 0.0
        assert r.inference_s > 0.0


def test_static_variant_is_untouched(reports):
    static = reports["static"].stats
    assert static.shed_count == 0
    assert "shed" not in static.outcome_counts()
    assert all(r.outcome != "degraded" for r in static.records)


def test_empty_control_loop_is_a_pure_observer():
    """A ControlLoop with no controllers ticks (observes) but must not
    perturb serving: records are byte-identical to ``control=None``."""
    cfg = AdaptiveConfig(num_requests=30, trace_steps=30,
                         burst_window=(2.0, 3.0))
    arrivals = burst_arrival_process(cfg.arrival_rate_hz, cfg.burst_window,
                                     cfg.burst_factor)

    def _run(control):
        system = _make_system(cfg, control=control)
        server = BatchingInferenceServer(
            system, arrival_rate_hz=cfg.arrival_rate_hz,
            policy=BatchPolicy(max_batch=cfg.max_batch, overlap=True),
            seed=cfg.seed + 1, control=control, arrival_process=arrivals)
        return server.run(num_requests=cfg.num_requests,
                          condition_trace=_trace(cfg),
                          trace_period_s=cfg.trace_period_s)

    baseline = _run(None)
    observer = ControlLoop([], period_s=0.5)
    observed = _run(observer)
    assert observer.ticks > 0, "the observer loop never fired"
    assert observer.actions == []
    assert observed.records == baseline.records
