"""CLI figure runner."""

import json

import pytest

from repro.cli import main


class TestCLI:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig13" in out and "vit" in out

    def test_no_command_lists(self, capsys):
        assert main([]) == 0
        assert "available figures" in capsys.readouterr().out

    def test_fig19_runs(self, capsys):
        assert main(["fig19"]) == 0
        out = capsys.readouterr().out
        assert "supernet reconfig" in out

    def test_vit_runs(self, capsys):
        assert main(["vit"]) == 0
        assert "patch-par" in capsys.readouterr().out

    def test_unknown_command_errors(self):
        with pytest.raises(SystemExit):
            main(["fig99"])

    def test_nonpositive_requests_errors_cleanly(self, capsys):
        """--requests <= 0 must die with a usage error, not a traceback."""
        for argv in (["telemetry", "--requests", "0"],
                     ["chaos", "--requests", "-1"]):
            with pytest.raises(SystemExit) as exc:
                main(argv)
            assert exc.value.code == 2
            assert "--requests must be positive" in capsys.readouterr().err

    def test_telemetry_runs_and_exports(self, capsys, tmp_path):
        out = tmp_path / "telemetry.jsonl"
        prom = tmp_path / "metrics.prom"
        assert main(["telemetry", "--requests", "8", "--out", str(out),
                     "--prom", str(prom)]) == 0
        stdout = capsys.readouterr().out
        assert "== telemetry report ==" in stdout
        assert "-- timelines" in stdout
        assert "wrote" in stdout
        # JSONL: every line parses; both record types present
        records = [json.loads(line)
                   for line in out.read_text().strip().split("\n")]
        kinds = {r["record"] for r in records}
        assert kinds == {"metric", "timeline"}
        assert sum(r["record"] == "timeline" for r in records) == 8
        # Prometheus text parses line-by-line (checked in detail in
        # tests/telemetry/test_export.py); spot-check a known sample
        assert "server_requests_total 8" in prom.read_text()
