"""CLI figure runner."""

import pytest

from repro.cli import main


class TestCLI:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig13" in out and "vit" in out

    def test_no_command_lists(self, capsys):
        assert main([]) == 0
        assert "available figures" in capsys.readouterr().out

    def test_fig19_runs(self, capsys):
        assert main(["fig19"]) == 0
        out = capsys.readouterr().out
        assert "supernet reconfig" in out

    def test_vit_runs(self, capsys):
        assert main(["vit"]) == 0
        assert "patch-par" in capsys.readouterr().out

    def test_unknown_command_errors(self):
        with pytest.raises(SystemExit):
            main(["fig99"])
