"""CLI figure runner."""

import json

import pytest

from repro.cli import main


class TestCLI:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig13" in out and "vit" in out

    def test_no_command_lists(self, capsys):
        assert main([]) == 0
        assert "available figures" in capsys.readouterr().out

    def test_fig19_runs(self, capsys):
        assert main(["fig19"]) == 0
        out = capsys.readouterr().out
        assert "supernet reconfig" in out

    def test_vit_runs(self, capsys):
        assert main(["vit"]) == 0
        assert "patch-par" in capsys.readouterr().out

    def test_unknown_command_errors(self):
        with pytest.raises(SystemExit):
            main(["fig99"])

    def test_nonpositive_requests_errors_cleanly(self, capsys):
        """--requests <= 0 must die with a usage error, not a traceback."""
        for argv in (["telemetry", "--requests", "0"],
                     ["chaos", "--requests", "-1"]):
            with pytest.raises(SystemExit) as exc:
                main(argv)
            assert exc.value.code == 2
            assert "--requests must be positive" in capsys.readouterr().err

    def test_telemetry_runs_and_exports(self, capsys, tmp_path):
        out = tmp_path / "telemetry.jsonl"
        prom = tmp_path / "metrics.prom"
        assert main(["telemetry", "--requests", "8", "--out", str(out),
                     "--prom", str(prom)]) == 0
        stdout = capsys.readouterr().out
        assert "== telemetry report ==" in stdout
        assert "-- timelines" in stdout
        assert "wrote" in stdout
        # JSONL: every line parses; both record types present
        records = [json.loads(line)
                   for line in out.read_text().strip().split("\n")]
        kinds = {r["record"] for r in records}
        assert kinds == {"metric", "timeline"}
        assert sum(r["record"] == "timeline" for r in records) == 8
        # Prometheus text parses line-by-line (checked in detail in
        # tests/telemetry/test_export.py); spot-check a known sample
        assert "server_requests_total 8" in prom.read_text()

    def test_record_then_replay(self, capsys, tmp_path):
        out = tmp_path / "run.jsonl"
        assert main(["record", "--requests", "6", "--seed", "3",
                     "--out", str(out)]) == 0
        stdout = capsys.readouterr().out
        assert "wrote" in stdout and "3 runs" in stdout
        records = [json.loads(line)
                   for line in out.read_text().strip().split("\n")]
        assert sum(r["record"] == "run-header" for r in records) == 3
        assert sum(r["record"] == "request" for r in records) == 18

        assert main(["replay", str(out)]) == 0
        stdout = capsys.readouterr().out
        assert "serving_load/fifo" in stdout
        assert "batched-serial" in stdout
        assert "invariants ok across 3 runs" in stdout

    def test_record_is_deterministic(self, capsys, tmp_path):
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        for path in (a, b):
            assert main(["record", "--requests", "5", "--out",
                         str(path)]) == 0
        capsys.readouterr()
        assert a.read_bytes() == b.read_bytes()

    def test_replay_verify_round_trips(self, capsys, tmp_path):
        out = tmp_path / "run.jsonl"
        assert main(["record", "--requests", "5", "--out", str(out)]) == 0
        assert main(["replay", str(out), "--verify"]) == 0
        stdout = capsys.readouterr().out
        assert "verified: live re-runs match all 3 recorded runs" in stdout

    def test_replay_rejects_corrupt_recording(self, capsys, tmp_path):
        out = tmp_path / "run.jsonl"
        assert main(["record", "--requests", "5", "--out", str(out)]) == 0
        lines = out.read_text().strip().split("\n")
        doctored = []
        for line in lines:
            rec = json.loads(line)
            if rec["record"] == "request" and rec["id"] == 2:
                rec["finish"] = rec["start"] - 1.0
            doctored.append(json.dumps(rec))
        out.write_text("\n".join(doctored) + "\n")
        with pytest.raises(SystemExit) as exc:
            main(["replay", str(out)])
        assert "invariants" in str(exc.value)

    def test_replay_missing_file_errors(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["replay", str(tmp_path / "nope.jsonl")])
