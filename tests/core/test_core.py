"""Core: SLO API, strategy cache, decision engines, the facade."""

import numpy as np
import pytest

from repro.core import (SLO, Murmuration, RLDecisionEngine,
                        SearchDecisionEngine, Strategy, StrategyCache)
from repro.devices import desktop_gtx1080, rpi4
from repro.nas import MBV3_SPACE, build_graph, max_arch
from repro.netsim import NetworkCondition
from repro.partition import single_device_plan
from repro.rl import EnvConfig, LSTMPolicy, MurmurationEnv


class TestSLO:
    def test_latency_constructors(self):
        assert SLO.latency(0.14).value == 0.14
        assert SLO.latency_ms(140).value == pytest.approx(0.14)

    def test_accuracy_constructor(self):
        assert SLO.accuracy(75.0).kind == "accuracy"

    @pytest.mark.parametrize("kind,value", [("latency", 0.0),
                                            ("latency", -1.0),
                                            ("accuracy", 0.0),
                                            ("accuracy", 101.0)])
    def test_invalid_values(self, kind, value):
        with pytest.raises(ValueError):
            SLO(kind, value)

    def test_invalid_kind(self):
        with pytest.raises(ValueError):
            SLO("throughput", 5.0)

    def test_satisfied_by(self):
        lat = SLO.latency(0.1)
        assert lat.satisfied_by(0.09, 50.0)
        assert not lat.satisfied_by(0.11, 99.0)
        acc = SLO.accuracy(75.0)
        assert acc.satisfied_by(10.0, 75.0)
        assert not acc.satisfied_by(0.001, 74.9)


def _strategy():
    arch = max_arch(MBV3_SPACE)
    graph = build_graph(arch, MBV3_SPACE)
    return Strategy(arch, single_device_plan(graph), 0.1, 78.0)


class TestStrategyCache:
    def test_put_get_roundtrip(self):
        cache = StrategyCache()
        slo = SLO.latency(0.14)
        cond = NetworkCondition((100.0,), (10.0,))
        assert cache.get(slo, cond) is None
        s = _strategy()
        cache.put(slo, cond, s)
        assert cache.get(slo, cond) is s
        assert cache.hits == 1 and cache.misses == 1

    def test_nearby_conditions_share_cell(self):
        cache = StrategyCache(bw_step=25.0, delay_step=10.0)
        slo = SLO.latency(0.14)
        s = _strategy()
        cache.put(slo, NetworkCondition((100.0,), (10.0,)), s)
        assert cache.get(slo, NetworkCondition((104.0,), (11.0,))) is s

    def test_distinct_slos_distinct_cells(self):
        cache = StrategyCache()
        cond = NetworkCondition((100.0,), (10.0,))
        cache.put(SLO.latency(0.1), cond, _strategy())
        assert cache.get(SLO.latency(0.3), cond) is None
        assert cache.get(SLO.accuracy(75.0), cond) is None

    def test_lru_eviction(self):
        cache = StrategyCache(capacity=2)
        s = _strategy()
        conds = [NetworkCondition((b,), (10.0,)) for b in (50.0, 150.0, 300.0)]
        for c in conds:
            cache.put(SLO.latency(0.1), c, s)
        assert len(cache) == 2
        assert cache.get(SLO.latency(0.1), conds[0]) is None  # evicted

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            StrategyCache(capacity=0)

    def test_hit_rate(self):
        cache = StrategyCache()
        assert cache.hit_rate == 0.0
        cond = NetworkCondition((100.0,), (10.0,))
        cache.get(SLO.latency(0.1), cond)
        cache.put(SLO.latency(0.1), cond, _strategy())
        cache.get(SLO.latency(0.1), cond)
        assert cache.hit_rate == 0.5

    def test_lru_eviction_order_respects_recency(self):
        """A get() refreshes an entry, so the *other* one is evicted."""
        cache = StrategyCache(capacity=2)
        slo = SLO.latency(0.1)
        s = _strategy()
        c_a = NetworkCondition((50.0,), (10.0,))
        c_b = NetworkCondition((150.0,), (10.0,))
        c_c = NetworkCondition((300.0,), (10.0,))
        cache.put(slo, c_a, s)
        cache.put(slo, c_b, s)
        assert cache.get(slo, c_a) is s   # refresh A: B is now oldest
        cache.put(slo, c_c, s)            # evicts B
        assert cache.get(slo, c_b) is None
        assert cache.get(slo, c_a) is s
        assert cache.get(slo, c_c) is s
        assert cache.evictions == 1

    def test_key_snapping_same_cell_collides(self):
        """Conditions within half a step of each other share one cell."""
        cache = StrategyCache(bw_step=25.0, delay_step=10.0)
        slo = SLO.latency(0.14)
        s = _strategy()
        cache.put(slo, NetworkCondition((100.0,), (10.0,)), s)
        # 100/25 = 4 and 110/25 = 4.4 both round to cell 4
        assert cache.get(slo, NetworkCondition((110.0,), (12.0,))) is s
        assert len(cache) == 1
        # overwriting through a colliding key is an overwrite, not insert
        cache.put(slo, NetworkCondition((110.0,), (12.0,)), s)
        assert cache.inserts == 1 and cache.overwrites == 1

    def test_key_snapping_adjacent_cells_do_not_collide(self):
        cache = StrategyCache(bw_step=25.0, delay_step=10.0)
        slo = SLO.latency(0.14)
        s = _strategy()
        cache.put(slo, NetworkCondition((100.0,), (10.0,)), s)
        # 120/25 = 4.8 rounds to cell 5: one step over, distinct entry
        assert cache.get(slo, NetworkCondition((120.0,), (10.0,))) is None
        cache.put(slo, NetworkCondition((120.0,), (10.0,)), s)
        assert len(cache) == 2 and cache.inserts == 2

    def test_clear_resets_store_and_counters(self):
        cache = StrategyCache(capacity=1)
        slo = SLO.latency(0.1)
        cond = NetworkCondition((100.0,), (10.0,))
        cache.get(slo, cond)                                   # miss
        cache.put(slo, cond, _strategy())                      # insert
        cache.put(slo, cond, _strategy())                      # overwrite
        cache.put(slo, NetworkCondition((300.0,), (50.0,)),
                  _strategy())                                 # eviction
        cache.get(slo, NetworkCondition((300.0,), (50.0,)))    # hit
        cache.clear()
        assert len(cache) == 0
        assert cache.stats() == {
            "entries": 0, "capacity": 1, "hits": 0, "misses": 0,
            "hit_rate": 0.0, "inserts": 0, "overwrites": 0, "evictions": 0,
            "invalidations": 0, "slo_step": 0.01, "bw_step": 25.0,
            "delay_step": 10.0}

    def test_peek_does_not_touch_stats_or_lru(self):
        """Regression: probing lookups (precompute warm-up, blocked-plan
        checks) must not count as serving hits/misses or refresh LRU."""
        cache = StrategyCache(capacity=2)
        slo = SLO.latency(0.1)
        s = _strategy()
        c_a = NetworkCondition((50.0,), (10.0,))
        c_b = NetworkCondition((150.0,), (10.0,))
        c_c = NetworkCondition((300.0,), (10.0,))
        assert cache.peek(slo, c_a) is None
        cache.put(slo, c_a, s)
        assert cache.peek(slo, c_a) is s
        assert cache.hits == 0 and cache.misses == 0
        # peek() must not refresh recency: A stays oldest and is evicted
        cache.put(slo, c_b, s)
        cache.peek(slo, c_a)
        cache.put(slo, c_c, s)
        assert cache.peek(slo, c_a) is None
        assert cache.peek(slo, c_b) is s

    def test_stats_snapshot(self):
        cache = StrategyCache(capacity=8)
        slo = SLO.latency(0.1)
        cond = NetworkCondition((100.0,), (10.0,))
        cache.get(slo, cond)
        cache.put(slo, cond, _strategy())
        cache.get(slo, cond)
        st = cache.stats()
        assert st["entries"] == 1 and st["capacity"] == 8
        assert st["hits"] == 1 and st["misses"] == 1
        assert st["hit_rate"] == 0.5
        assert st["inserts"] == 1
        assert st["overwrites"] == 0 and st["evictions"] == 0


class TestSetSteps:
    """Runtime granularity retuning — the control plane's cache knob."""

    def test_rekey_preserves_entries_and_recent_wins_collisions(self):
        cache = StrategyCache(bw_step=25.0, delay_step=10.0)
        slo = SLO.latency(0.1)
        s_old, s_new = _strategy(), _strategy()
        cache.put(slo, NetworkCondition((100.0,), (10.0,)), s_old)
        cache.put(slo, NetworkCondition((120.0,), (10.0,)), s_new)
        assert len(cache) == 2
        # coarsening to 50: cells 100/50=2 and 120/50=2.4 collide; the
        # more recently used entry must survive
        dropped = cache.set_steps(bw_step=50.0)
        assert dropped == 1 and len(cache) == 1
        assert cache.invalidations == 1
        assert cache.get(slo, NetworkCondition((110.0,), (10.0,))) is s_new

    def test_rekey_false_invalidates_everything(self):
        cache = StrategyCache(bw_step=25.0)
        slo = SLO.latency(0.1)
        cache.put(slo, NetworkCondition((100.0,), (10.0,)), _strategy())
        cache.put(slo, NetworkCondition((300.0,), (10.0,)), _strategy())
        dropped = cache.set_steps(bw_step=50.0, rekey=False)
        assert dropped == 2 and len(cache) == 0
        assert cache.invalidations == 2
        assert cache.bw_step == 50.0

    def test_refine_separates_formerly_shared_cells(self):
        """After refining, peek() must see the new, finer snapping."""
        cache = StrategyCache(bw_step=50.0, delay_step=10.0)
        slo = SLO.latency(0.1)
        s = _strategy()
        cache.put(slo, NetworkCondition((100.0,), (10.0,)), s)
        assert cache.peek(slo, NetworkCondition((120.0,), (10.0,))) is s
        assert cache.set_steps(bw_step=25.0) == 0  # refine drops nothing
        # entry re-snapped from its exact written condition (cell 4);
        # 120 now lands in cell 5, its own distinct cell
        assert cache.peek(slo, NetworkCondition((120.0,), (10.0,))) is None
        assert cache.peek(slo, NetworkCondition((104.0,), (10.0,))) is s

    def test_unchanged_steps_are_a_noop(self):
        cache = StrategyCache()
        slo = SLO.latency(0.1)
        cache.put(slo, NetworkCondition((100.0,), (10.0,)), _strategy())
        assert cache.set_steps(bw_step=cache.bw_step) == 0
        assert cache.set_steps() == 0
        assert len(cache) == 1 and cache.invalidations == 0

    @pytest.mark.parametrize("kwargs", [dict(slo_step=0.0),
                                        dict(bw_step=-1.0),
                                        dict(delay_step=0.0)])
    def test_invalid_steps_rejected(self, kwargs):
        cache = StrategyCache()
        with pytest.raises(ValueError, match="must be positive"):
            cache.set_steps(**kwargs)

    def test_hit_miss_counters_survive_a_retune(self):
        """The control loop retunes from windowed hit/miss deltas, so a
        retune must not erase the evidence it acted on."""
        cache = StrategyCache()
        slo = SLO.latency(0.1)
        cond = NetworkCondition((100.0,), (10.0,))
        cache.get(slo, cond)                 # miss
        cache.put(slo, cond, _strategy())
        cache.get(slo, cond)                 # hit
        cache.set_steps(bw_step=50.0)
        st = cache.stats()
        assert st["hits"] == 1 and st["misses"] == 1
        assert st["bw_step"] == 50.0

    def test_rekey_preserves_lru_order(self):
        """Eviction order after a retune still reflects pre-retune use."""
        cache = StrategyCache(capacity=2, bw_step=25.0)
        slo = SLO.latency(0.1)
        s = _strategy()
        c_a = NetworkCondition((50.0,), (10.0,))
        c_b = NetworkCondition((300.0,), (10.0,))
        cache.put(slo, c_a, s)
        cache.put(slo, c_b, s)
        assert cache.get(slo, c_a) is s      # A is now most recent
        cache.set_steps(bw_step=30.0)
        cache.put(slo, NetworkCondition((150.0,), (10.0,)), s)
        assert cache.peek(slo, c_b) is None  # B was oldest: evicted
        assert cache.peek(slo, c_a) is s


@pytest.fixture(scope="module")
def devices():
    return [rpi4(), desktop_gtx1080()]


class TestSearchDecisionEngine:
    def test_loose_latency_slo_satisfiable(self, devices):
        eng = SearchDecisionEngine(MBV3_SPACE, devices)
        rec = eng.decide(SLO.latency(1.0), NetworkCondition((200.0,), (20.0,)))
        assert rec.strategy is not None
        assert rec.strategy.expected_latency_s <= 1.0
        assert rec.decision_time_s > 0

    def test_impossible_slo_returns_none(self, devices):
        eng = SearchDecisionEngine(MBV3_SPACE, devices)
        rec = eng.decide(SLO.latency(0.0001),
                         NetworkCondition((200.0,), (20.0,)))
        assert rec.strategy is None

    def test_accuracy_slo_minimizes_latency(self, devices):
        eng = SearchDecisionEngine(MBV3_SPACE, devices)
        hi = eng.decide(SLO.accuracy(78.0), NetworkCondition((400.0,), (5.0,)))
        lo = eng.decide(SLO.accuracy(72.0), NetworkCondition((400.0,), (5.0,)))
        assert hi.strategy and lo.strategy
        assert lo.strategy.expected_latency_s <= hi.strategy.expected_latency_s


class TestRLDecisionEngine:
    def test_decide_runs_policy(self, devices):
        env = MurmurationEnv(MBV3_SPACE, devices, EnvConfig())
        policy = LSTMPolicy.for_env(env)
        eng = RLDecisionEngine(env, policy)
        rec = eng.decide(SLO.latency(0.5), NetworkCondition((200.0,), (20.0,)))
        assert rec.engine == "rl"
        assert rec.decision_time_s < 1.0  # milliseconds in practice

    def test_slo_kind_mismatch(self, devices):
        env = MurmurationEnv(MBV3_SPACE, devices,
                             EnvConfig(slo_kind="latency"))
        eng = RLDecisionEngine(env, LSTMPolicy.for_env(env))
        with pytest.raises(ValueError):
            eng.decide(SLO.accuracy(75.0), NetworkCondition((200.0,), (20.0,)))


class TestMurmurationFacade:
    def _system(self, devices, use_predictor=True):
        cond = NetworkCondition((200.0,), (20.0,))
        engine = SearchDecisionEngine(MBV3_SPACE, devices)
        return Murmuration(MBV3_SPACE, devices, cond, engine,
                           slo=SLO.latency(0.3), use_predictor=use_predictor,
                           seed=1)

    def test_infer_plan_only(self, devices):
        sys = self._system(devices)
        rec = sys.infer()
        assert rec.satisfied
        assert rec.latency_s <= 0.3
        assert rec.strategy is not None

    def test_cache_hit_on_second_request(self, devices):
        sys = self._system(devices, use_predictor=False)
        r1 = sys.infer()
        r2 = sys.infer()
        assert not r1.cache_hit
        assert r2.cache_hit
        assert r2.decision_time_s == 0.0

    def test_infer_advances_clock_by_full_service_time(self, devices):
        """Regression: the clock drifted by decision+switch time per
        request — it must advance by the *whole* service time, or fault
        schedules and condition traces slip out of alignment."""
        sys = self._system(devices, use_predictor=False)
        rec = sys.infer(now=0.0)
        assert rec.decision_time_s > 0.0  # first request really decides
        assert sys._now == pytest.approx(
            rec.decision_time_s + rec.switch_time_s + rec.latency_s)
        before = sys._now
        rec2 = sys.infer()
        assert sys._now == pytest.approx(
            before + rec2.decision_time_s + rec2.switch_time_s
            + rec2.latency_s)

    def test_infer_rejects_rewinding_now(self, devices):
        """Serving time is monotone: an infer(now=...) earlier than the
        facade's clock is a causality bug, not a clamp."""
        sys = self._system(devices, use_predictor=False)
        sys.infer(now=2.0)
        with pytest.raises(ValueError, match="rewind"):
            sys.infer(now=1.0)

    def test_infer_tolerates_float_noise_rewinds(self, devices):
        """Servers sum service segments in a different association order
        than the clock accumulates them; a few-ulp 'rewind' is float
        noise and must be absorbed like the historical assignment."""
        sys = self._system(devices, use_predictor=False)
        sys.infer(now=1.0)
        t = sys.clock.now
        noise = t - t * 1e-12  # well inside tolerance, below t
        rec = sys.infer(now=noise)
        assert rec is not None

    def test_facade_shares_an_injected_clock(self, devices):
        """The event core hands the facade a clock shared with an
        EventLoop; both sides must see each other's advances."""
        from repro.runtime.clock import SimulatedClock

        clock = SimulatedClock()
        cond = NetworkCondition((200.0,), (20.0,))
        engine = SearchDecisionEngine(MBV3_SPACE, devices)
        sys = Murmuration(MBV3_SPACE, devices, cond, engine,
                          slo=SLO.latency(0.3), use_predictor=False,
                          seed=1, clock=clock)
        assert sys.clock is clock
        clock.advance_to(5.0)
        assert sys._now == 5.0
        sys.infer(now=6.0)
        assert clock.now > 6.0  # service time accrued on the shared clock

    def test_precompute_does_not_poison_cache_stats(self, devices):
        """Regression: warm-up probes counted as serving misses, so
        core_cache_hit_rate underreported after every precompute."""
        sys = self._system(devices, use_predictor=False)
        conds = [NetworkCondition((bw,), (20.0,)) for bw in (50.0, 200.0)]
        assert sys.precompute(conds) == 2
        assert sys.cache.misses == 0 and sys.cache.hits == 0
        # precompute again: already warm, still no stat movement
        assert sys.precompute(conds) == 0
        assert sys.cache.misses == 0 and sys.cache.hits == 0

    def test_requires_slo(self, devices):
        sys = self._system(devices)
        sys.slo = None
        with pytest.raises(RuntimeError, match="SLO"):
            sys.infer()

    def test_set_slo_changes_strategy_quality(self, devices):
        sys = self._system(devices)
        sys.set_slo(SLO.latency(1.0))
        loose = sys.infer()
        sys.set_slo(SLO.latency(0.12))
        tight = sys.infer()
        assert tight.latency_s <= 0.12 + 1e-9
        assert loose.accuracy >= tight.accuracy - 1e-9

    def test_adapts_to_condition_change(self, devices):
        sys = self._system(devices)
        good = sys.infer()
        sys.update_condition(NetworkCondition((20.0,), (95.0,)))
        # burn a few probes so the EWMA catches up
        for _ in range(6):
            sys.observed_condition()
        degraded = sys.infer()
        assert degraded.satisfied
        # under a bad network the system trades accuracy for latency
        assert degraded.accuracy <= good.accuracy + 1e-9

    def test_precompute_warms_cache(self, devices):
        sys = self._system(devices, use_predictor=False)
        conds = [NetworkCondition((b,), (20.0,)) for b in (100.0, 300.0)]
        n = sys.precompute(conds)
        assert n == 2
        assert sys.cache.get(sys.slo, conds[0]) is not None

    def test_compliance_rate_tracks_records(self, devices):
        sys = self._system(devices)
        assert sys.compliance_rate() == 0.0
        sys.infer()
        assert sys.compliance_rate() == 1.0
