"""RLDecisionEngine fallback semantics."""

import numpy as np
import pytest

from repro.core import SLO, RLDecisionEngine
from repro.devices import desktop_gtx1080, rpi4
from repro.nas import MBV3_SPACE
from repro.netsim import NetworkCondition
from repro.rl import EnvConfig, LSTMPolicy, MurmurationEnv, PolicyConfig


@pytest.fixture(scope="module")
def env():
    return MurmurationEnv(MBV3_SPACE, [rpi4(), desktop_gtx1080()],
                          EnvConfig(slo_kind="latency"))


@pytest.fixture
def untrained_policy(env):
    # A fresh random policy: its greedy strategy will often miss SLOs.
    return LSTMPolicy.for_env(env, PolicyConfig(hidden_size=16, seed=42))


class TestFallback:
    def test_fallback_rescues_satisfiable_slo(self, env, untrained_policy):
        """Even with a random policy, any SLO the seed strategies can
        meet is served."""
        engine = RLDecisionEngine(env, untrained_policy, fallback=True)
        # generous SLO: the min submodel locally is ~130 ms
        rec = engine.decide(SLO.latency_ms(700),
                            NetworkCondition((10.0,), (90.0,)))
        assert rec.strategy is not None
        assert rec.strategy.expected_latency_s <= 0.7

    def test_no_fallback_exposes_raw_policy(self, env, untrained_policy):
        engine_raw = RLDecisionEngine(env, untrained_policy, fallback=False)
        engine_fb = RLDecisionEngine(env, untrained_policy, fallback=True)
        conditions = [NetworkCondition((b,), (d,))
                      for b in (20.0, 100.0, 300.0)
                      for d in (10.0, 50.0, 90.0)]
        raw_hits = sum(engine_raw.decide(SLO.latency_ms(400), c).strategy
                       is not None for c in conditions)
        fb_hits = sum(engine_fb.decide(SLO.latency_ms(400), c).strategy
                      is not None for c in conditions)
        assert fb_hits >= raw_hits
        assert fb_hits == len(conditions)  # 400 ms is always satisfiable

    def test_impossible_slo_still_none(self, env, untrained_policy):
        engine = RLDecisionEngine(env, untrained_policy, fallback=True)
        rec = engine.decide(SLO.latency(1e-5),
                            NetworkCondition((100.0,), (10.0,)))
        assert rec.strategy is None

    def test_policy_choice_kept_when_it_satisfies(self, env,
                                                  untrained_policy):
        """The fallback only activates on SLO misses: a satisfying
        policy decision is returned untouched (even if a seed strategy
        would score higher)."""
        engine = RLDecisionEngine(env, untrained_policy, fallback=True)
        condition = NetworkCondition((400.0,), (5.0,))
        rec = engine.decide(SLO.latency(5.0), condition)  # trivially met
        assert rec.strategy is not None
        # matches the raw (no-fallback) decision exactly
        raw = RLDecisionEngine(env, untrained_policy,
                               fallback=False).decide(SLO.latency(5.0),
                                                      condition)
        assert raw.strategy is not None
        assert rec.strategy.arch == raw.strategy.arch
