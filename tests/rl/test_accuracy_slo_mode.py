"""The accuracy-SLO formulation (Eq. 3) end-to-end, and heterogeneous
clusters with a third device class."""

import numpy as np
import pytest

from repro.devices import desktop_gtx1080, jetson_class, rpi4
from repro.nas import MBV3_SPACE
from repro.rl import (EnvConfig, MurmurationEnv, SupremeConfig,
                      SupremeTrainer, Task, bootstrap_actions,
                      satisfiable_mask)
from repro.netsim import NetworkCondition


@pytest.fixture(scope="module")
def acc_env():
    return MurmurationEnv(
        MBV3_SPACE, [rpi4(), desktop_gtx1080()],
        EnvConfig(slo_kind="accuracy", acc_slo_range=(72.0, 78.0)))


class TestAccuracySLOEnv:
    def test_sampled_tasks_in_accuracy_range(self, acc_env):
        rng = np.random.default_rng(0)
        for _ in range(10):
            t = acc_env.sample_task(rng)
            assert 72.0 <= t.slo <= 78.0

    def test_max_submodel_satisfies_tight_goal(self, acc_env):
        task = Task(78.0, NetworkCondition((200.0,), (20.0,)))
        out = acc_env.evaluate_actions(bootstrap_actions(acc_env)[1], task)
        assert out.satisfied
        assert out.reward > 0

    def test_min_submodel_misses_tight_goal(self, acc_env):
        task = Task(78.0, NetworkCondition((200.0,), (20.0,)))
        out = acc_env.evaluate_actions(bootstrap_actions(acc_env)[0], task)
        assert not out.satisfied
        assert out.reward == 0.0

    def test_reward_prefers_lower_latency(self, acc_env):
        """Eq. 3: among accuracy-satisfying strategies, faster is better."""
        task = Task(76.0, NetworkCondition((400.0,), (5.0,)))
        slow = acc_env.evaluate_actions(bootstrap_actions(acc_env)[1], task)
        fast = acc_env.evaluate_actions(bootstrap_actions(acc_env)[2], task)
        assert slow.satisfied and fast.satisfied
        assert fast.latency_s < slow.latency_s
        assert fast.reward > slow.reward

    def test_relabeling_uses_achieved_accuracy(self, acc_env):
        task = Task(79.5, NetworkCondition((200.0,), (20.0,)))  # impossible
        out = acc_env.evaluate_actions(bootstrap_actions(acc_env)[1], task)
        vals = acc_env.achieved_values(out, task)
        assert vals[0] == pytest.approx(out.accuracy)
        assert acc_env.relabeled_reward(out) > 0


class TestAccuracySLOTraining:
    def test_supreme_trains_in_accuracy_mode(self, acc_env):
        """Short SUPREME run with the Eq. 3 reward: buffer fills, metrics
        finite, buckets keyed by achieved accuracy."""
        tasks = acc_env.validation_tasks(points=2)
        mask = satisfiable_mask(acc_env, tasks)
        tr = SupremeTrainer(acc_env, SupremeConfig(
            total_steps=96, rollout_batch=16, eval_every=48, seed=0))
        hist = tr.train(tasks, mask)
        assert tr.buffer.num_entries > 0
        assert all(np.isfinite(r) for r in hist.avg_reward)
        # accuracy dimension relaxes downward: a strategy achieving 78%
        # must be visible at the 72% requirement.
        strong = tr.buffer.lookup((72.0,) + (400.0,) + (5.0,))
        assert isinstance(strong, list)


class TestHeterogeneousCluster:
    def test_three_device_classes_encode_distinctly(self):
        env = MurmurationEnv(
            MBV3_SPACE, [rpi4(), desktop_gtx1080(), jetson_class()],
            EnvConfig())
        task = Task(0.2, NetworkCondition((100.0, 100.0), (10.0, 10.0)))
        ctx = env.encode_task(task)
        assert ctx.shape == (env.context_dim,)
        # the trailing 9 entries are three one-hot device classes
        onehots = ctx[-9:].reshape(3, 3)
        assert (onehots.sum(axis=1) == 1.0).all()
        assert not (onehots[0] == onehots[1]).all()

    def test_oracle_uses_fastest_device(self):
        """With a GPU and a Jetson attached, big offloads land on the
        GPU when its link is good."""
        from repro.core import SLO
        from repro.eval import MurmurationOracle
        devices = [rpi4(), jetson_class(), desktop_gtx1080()]
        oracle = MurmurationOracle(MBV3_SPACE, devices)
        s = oracle.decide(SLO.latency_ms(120),
                          NetworkCondition((300.0, 300.0), (5.0, 5.0)))
        assert s is not None
        assert 2 in s.plan.devices_used()  # the GTX1080
