"""SUPREME bucketed replay buffer: top-n filtering, the sharing walk,
domination pruning — including hypothesis properties on the lattice."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rl import BucketDim, BucketedReplayBuffer, Entry


def dims_2d(n=5):
    """(slo relax up, bandwidth relax up) 2-D lattice as in Fig. 7."""
    return [
        BucketDim("slo", tuple(np.linspace(0.1, 1.0, n)), relax_sign=+1),
        BucketDim("bw", tuple(np.linspace(10, 100, n)), relax_sign=+1),
    ]


def entry(reward, actions=None):
    return Entry(actions=np.asarray(actions if actions is not None else [0]),
                 reward=reward, latency_s=0.1, accuracy=75.0)


class TestBucketDim:
    def test_grid_must_ascend(self):
        with pytest.raises(ValueError):
            BucketDim("x", (3.0, 1.0), +1)

    def test_relax_sign_validated(self):
        with pytest.raises(ValueError):
            BucketDim("x", (1.0, 2.0), 0)

    def test_index_easier_relax_up(self):
        d = BucketDim("slo", (0.1, 0.2, 0.3), +1)
        # achieved 0.15 -> valid at grid points >= 0.15 -> index of 0.2
        assert d.index_easier(0.15) == 1
        assert d.index_easier(0.05) == 0
        assert d.index_easier(0.9) == 2  # clamped

    def test_index_easier_relax_down(self):
        d = BucketDim("delay", (10.0, 20.0, 30.0), -1)
        # achieved under delay 25 -> valid at delays <= 25 -> index of 20
        assert d.index_easier(25.0) == 1
        assert d.index_easier(5.0) == 0  # clamped

    def test_harder_step_direction(self):
        up = BucketDim("slo", (1.0, 2.0, 3.0), +1)
        assert up.harder_step(2) == 1
        assert up.harder_step(0) is None
        down = BucketDim("delay", (1.0, 2.0, 3.0), -1)
        assert down.harder_step(0) == 1
        assert down.harder_step(2) is None


class TestInsertAndTopN:
    def test_top_n_kept_by_reward(self):
        buf = BucketedReplayBuffer(dims_2d(), top_n=2)
        for r in (0.1, 0.9, 0.5, 0.7):
            buf.insert((0.5, 50.0), entry(r))
        kept = buf.lookup((0.5, 50.0))
        assert sorted(e.reward for e in kept) == [0.7, 0.9]

    def test_insert_returns_retention(self):
        buf = BucketedReplayBuffer(dims_2d(), top_n=1)
        assert buf.insert((0.5, 50.0), entry(0.5))
        assert not buf.insert((0.5, 50.0), entry(0.1))
        assert buf.insert((0.5, 50.0), entry(0.9))

    def test_wrong_dimensionality(self):
        buf = BucketedReplayBuffer(dims_2d())
        with pytest.raises(ValueError):
            buf.insert((0.5,), entry(1.0))

    def test_counters(self):
        buf = BucketedReplayBuffer(dims_2d(), top_n=4)
        buf.insert((0.2, 20.0), entry(1.0))
        buf.insert((0.9, 90.0), entry(1.0))
        assert buf.num_buckets == 2
        assert buf.num_entries == 2


class TestSharing:
    def test_empty_bucket_borrows_from_harder(self):
        buf = BucketedReplayBuffer(dims_2d(), top_n=2, share=True)
        # Strategy achieved at a *hard* point: low slo, low bw.
        buf.insert((0.1, 10.0), entry(0.8, actions=[1, 2, 3]))
        # Query at an easier point (higher slo, higher bw): shared.
        got = buf.lookup((1.0, 100.0))
        assert len(got) == 1 and got[0].reward == 0.8

    def test_no_share_from_easier(self):
        buf = BucketedReplayBuffer(dims_2d(), top_n=2, share=True)
        # Strategy only valid at the easiest corner...
        buf.insert((1.0, 100.0), entry(0.8))
        # ...must NOT leak to harder constraints.
        assert buf.lookup((0.1, 10.0)) == []

    def test_share_disabled(self):
        buf = BucketedReplayBuffer(dims_2d(), top_n=2, share=False)
        buf.insert((0.1, 10.0), entry(0.8))
        assert buf.lookup((1.0, 100.0)) == []

    def test_nearest_ancestor_wins(self):
        buf = BucketedReplayBuffer(dims_2d(), top_n=2, share=True)
        buf.insert((0.1, 10.0), entry(0.3))   # far ancestor
        buf.insert((0.55, 55.0), entry(0.6))  # near ancestor
        got = buf.lookup((0.77, 77.0))
        assert got[0].reward == 0.6

    def test_best_helper(self):
        buf = BucketedReplayBuffer(dims_2d(), top_n=3)
        buf.insert((0.5, 50.0), entry(0.2))
        buf.insert((0.5, 50.0), entry(0.9))
        assert buf.best((0.5, 50.0)).reward == 0.9
        assert buf.best((0.1, 10.0)) is None


class TestPruning:
    def test_dominated_bucket_pruned(self):
        buf = BucketedReplayBuffer(dims_2d(), top_n=2, share=True)
        buf.insert((0.1, 10.0), entry(0.9))   # strong, hard-constraint
        buf.insert((0.55, 55.0), entry(0.4))  # weaker at an easier point
        removed = buf.prune()
        assert removed == 1
        # the easier bucket now resolves to the ancestor's data
        assert buf.best((0.55, 55.0)).reward == 0.9

    def test_better_easier_bucket_survives(self):
        buf = BucketedReplayBuffer(dims_2d(), top_n=2, share=True)
        buf.insert((0.1, 10.0), entry(0.4))
        buf.insert((0.55, 55.0), entry(0.9))
        assert buf.prune() == 0
        assert buf.best((0.55, 55.0)).reward == 0.9

    def test_prune_without_ancestors_noop(self):
        buf = BucketedReplayBuffer(dims_2d(), top_n=2, share=True)
        buf.insert((0.1, 10.0), entry(0.5))  # hardest corner, no ancestor
        assert buf.prune() == 0


class TestSampling:
    def test_sample_returns_pairs(self):
        buf = BucketedReplayBuffer(dims_2d(), top_n=2)
        buf.insert((0.3, 30.0), entry(0.5, actions=[4, 5]))
        rng = np.random.default_rng(0)
        pairs = buf.sample(10, rng)
        assert len(pairs) >= 1
        values, e = pairs[0]
        assert len(values) == 2
        assert isinstance(e, Entry)

    def test_sample_empty_buffer(self):
        buf = BucketedReplayBuffer(dims_2d())
        assert buf.sample(5, np.random.default_rng(0)) == []


class TestLatticeProperties:
    @given(st.lists(st.tuples(st.floats(0.1, 1.0), st.floats(10, 100),
                              st.floats(0, 1)), min_size=1, max_size=30))
    @settings(max_examples=30, deadline=None)
    def test_shared_data_is_always_valid(self, points):
        """Anything lookup() returns at constraint c was inserted at a
        point no easier than c in every dimension."""
        buf = BucketedReplayBuffer(dims_2d(7), top_n=3, share=True)
        inserted = {}
        for slo, bw, r in points:
            e = entry(r)
            buf.insert((slo, bw), e)
            idx = buf.bucket_of((slo, bw), toward_easier=True)
            inserted[id(e)] = idx
        # probe every lattice point
        for i, slo in enumerate(buf.dims[0].grid):
            for j, bw in enumerate(buf.dims[1].grid):
                for e in buf.lookup((slo, bw)):
                    src = inserted[id(e)]
                    assert src[0] <= i and src[1] <= j

    @given(st.lists(st.tuples(st.floats(0.1, 1.0), st.floats(10, 100),
                              st.floats(0, 1)), min_size=2, max_size=25))
    @settings(max_examples=30, deadline=None)
    def test_prune_never_lowers_best_reward(self, points):
        """Pruning removes only dominated data: the best reachable reward
        at every lattice point is unchanged."""
        buf = BucketedReplayBuffer(dims_2d(6), top_n=3, share=True)
        for slo, bw, r in points:
            buf.insert((slo, bw), entry(r))
        before = {}
        for slo in buf.dims[0].grid:
            for bw in buf.dims[1].grid:
                b = buf.best((slo, bw))
                before[(slo, bw)] = b.reward if b else None
        buf.prune()
        for key, val in before.items():
            b = buf.best(key)
            after = b.reward if b else None
            if val is None:
                assert after is None
            else:
                assert after is not None and after >= val - 1e-12
