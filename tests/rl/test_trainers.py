"""Trainer behaviour: GCSL / PPO / SUPREME smoke runs, mutation
operators, and the training-curve ordering the paper reports."""

import numpy as np
import pytest

from repro.devices import desktop_gtx1080, rpi4
from repro.nas import MBV3_SPACE
from repro.rl import (EnvConfig, GCSLConfig, GCSLTrainer, MurmurationEnv,
                      PPOConfig, PPOTrainer, SupremeConfig, SupremeTrainer,
                      murmuration_basic_config, satisfiable_mask)
from repro.rl.supreme.mutation import (improve_locality, mutate_actions,
                                       suboptimal_buckets)


@pytest.fixture(scope="module")
def env():
    return MurmurationEnv(MBV3_SPACE, [rpi4(), desktop_gtx1080()],
                          EnvConfig(slo_kind="latency"))


@pytest.fixture(scope="module")
def eval_setup(env):
    tasks = env.validation_tasks(points=3)
    mask = satisfiable_mask(env, tasks)
    return tasks, mask


class TestMutation:
    def test_mutate_stays_in_ranges(self, env):
        rng = np.random.default_rng(0)
        base = np.array([0] * env.episode_length)
        m = mutate_actions(base, env, rng, rate=1.0)
        for t, step in enumerate(env.schedule):
            assert 0 <= m[t] < step.n_choices

    def test_mutate_rate_zero_identity(self, env):
        rng = np.random.default_rng(1)
        base = np.array([0] * env.episode_length)
        np.testing.assert_array_equal(mutate_actions(base, env, rng, 0.0),
                                      base)

    def test_improve_locality_targets_majority_device(self, env):
        rng = np.random.default_rng(2)
        actions = np.zeros(env.episode_length, dtype=np.int64)
        dev_steps = [t for t, s in enumerate(env.schedule)
                     if s.kind in ("device", "head_device")]
        for t in dev_steps:
            actions[t] = 1  # everything remote
        actions[dev_steps[0]] = 0  # one local outlier
        out = improve_locality(actions, env, rng)
        # moved decisions only ever move to device 1 (the majority)
        changed = [t for t in dev_steps if out[t] != actions[t]]
        assert all(out[t] == 1 for t in changed)

    def test_suboptimal_buckets_flags_low_reward(self, env):
        from repro.rl import BucketDim, BucketedReplayBuffer, Entry
        buf = BucketedReplayBuffer(
            [BucketDim("slo", (0.1, 0.5, 1.0), +1)], top_n=2, share=False)
        buf.insert((0.1,), Entry(np.array([0]), 0.9, 0.1, 75.0))
        buf.insert((1.0,), Entry(np.array([0]), 0.1, 0.1, 75.0))
        low = suboptimal_buckets(buf)
        assert buf.bucket_of((1.0,)) in low
        assert buf.bucket_of((0.1,)) not in low


class TestGCSL:
    def test_smoke_records_history(self, env, eval_setup):
        tasks, mask = eval_setup
        tr = GCSLTrainer(env, GCSLConfig(total_steps=96, rollout_batch=16,
                                         eval_every=48, seed=0))
        hist = tr.train(tasks, mask)
        assert len(hist.steps) >= 1
        assert len(hist.losses) > 0
        assert all(np.isfinite(hist.losses))

    def test_buffer_grows_and_bounded(self, env):
        cfg = GCSLConfig(total_steps=64, rollout_batch=16, buffer_size=50,
                         eval_every=10 ** 9, seed=1)
        tr = GCSLTrainer(env, cfg)
        tr.train(eval_tasks=[], eval_mask=np.zeros(0, dtype=bool))
        assert 0 < len(tr.buffer) <= 50


class TestPPO:
    def test_smoke(self, env, eval_setup):
        tasks, mask = eval_setup
        tr = PPOTrainer(env, PPOConfig(total_steps=64, rollout_batch=16,
                                       eval_every=32, seed=0))
        hist = tr.train(tasks, mask)
        assert len(hist.steps) >= 1
        assert all(np.isfinite(hist.losses))


class TestSupreme:
    def test_smoke_and_buffer_populated(self, env, eval_setup):
        tasks, mask = eval_setup
        tr = SupremeTrainer(env, SupremeConfig(
            total_steps=96, rollout_batch=16, eval_every=48, seed=0))
        hist = tr.train(tasks, mask)
        assert tr.buffer.num_entries > 0
        assert len(hist.steps) >= 1

    def test_epsilon_decays(self, env):
        tr = SupremeTrainer(env, SupremeConfig(epsilon_start=0.6,
                                               epsilon_end=0.1,
                                               epsilon_decay_steps=100))
        e0 = tr._epsilon()
        tr._collected = 100
        assert tr._epsilon() == pytest.approx(0.1)
        assert e0 == pytest.approx(0.6)

    def test_curriculum_expands(self, env):
        tr = SupremeTrainer(env, SupremeConfig(curriculum=True,
                                               curriculum_steps_per_dim=50))
        assert tr._active_dims() == 2
        tr._collected = 120
        assert tr._active_dims() == 4

    def test_curriculum_disabled(self, env):
        tr = SupremeTrainer(env, SupremeConfig(curriculum=False))
        assert tr._active_dims() is None

    def test_murmuration_basic_flags(self):
        cfg = murmuration_basic_config(total_steps=10)
        assert cfg.share and not cfg.prune and not cfg.mutate
        assert cfg.total_steps == 10

    def test_bootstrap_seeds_buffer(self, env):
        tr = SupremeTrainer(env, SupremeConfig())
        assert tr.buffer.num_entries >= 2


@pytest.mark.slow
class TestTrainingOrdering:
    def test_supreme_beats_ppo(self, env, eval_setup):
        """The paper's headline RL result at small scale: SUPREME's final
        reward exceeds PPO's (Fig. 11)."""
        tasks, mask = eval_setup
        steps = 480
        sup = SupremeTrainer(env, SupremeConfig(
            total_steps=steps, rollout_batch=16, eval_every=steps // 2,
            seed=1))
        h_sup = sup.train(tasks, mask)
        ppo = PPOTrainer(env, PPOConfig(
            total_steps=steps, rollout_batch=16, eval_every=steps // 2,
            seed=1))
        h_ppo = ppo.train(tasks, mask)
        assert h_sup.avg_reward[-1] > h_ppo.avg_reward[-1]
