"""LSTM policy: rollout behaviour and teacher-forced BPTT gradients."""

import numpy as np
import pytest

from repro.devices import desktop_gtx1080, rpi4
from repro.nas import MBV3_SPACE
from repro.nn import functional as F
from repro.rl import EnvConfig, LSTMPolicy, MurmurationEnv, PolicyConfig
from tests.conftest import numeric_grad


@pytest.fixture(scope="module")
def env():
    return MurmurationEnv(MBV3_SPACE, [rpi4(), desktop_gtx1080()],
                          EnvConfig())


@pytest.fixture
def policy(env):
    return LSTMPolicy.for_env(env, PolicyConfig(hidden_size=32, seed=0))


class TestRollout:
    def test_shapes(self, env, policy):
        rng = np.random.default_rng(0)
        ctx = np.stack([env.encode_task(env.sample_task(rng))
                        for _ in range(5)])
        batch = policy.rollout(ctx, env.schedule, rng)
        assert batch.actions.shape == (5, env.episode_length)
        assert batch.log_probs.shape == batch.actions.shape
        assert (batch.log_probs <= 0).all()
        assert (batch.entropies >= 0).all()

    def test_actions_within_ranges(self, env, policy):
        rng = np.random.default_rng(1)
        ctx = np.stack([env.encode_task(env.sample_task(rng))
                        for _ in range(8)])
        batch = policy.rollout(ctx, env.schedule, rng, epsilon=0.5)
        for t, step in enumerate(env.schedule):
            assert batch.actions[:, t].max() < step.n_choices

    def test_greedy_deterministic(self, env, policy):
        task = env.sample_task(np.random.default_rng(2))
        ctx = env.encode_task(task)
        a1 = policy.greedy_actions(ctx, env.schedule)
        a2 = policy.greedy_actions(ctx, env.schedule)
        np.testing.assert_array_equal(a1, a2)

    def test_epsilon_increases_diversity(self, env, policy):
        rng = np.random.default_rng(3)
        ctx = np.stack([env.encode_task(env.sample_task(
            np.random.default_rng(9)))] * 32)
        greedy = policy.rollout(ctx, env.schedule,
                                np.random.default_rng(4), greedy=True)
        noisy = policy.rollout(ctx, env.schedule,
                               np.random.default_rng(4), epsilon=1.0)
        assert len({tuple(r) for r in greedy.actions}) == 1
        assert len({tuple(r) for r in noisy.actions}) > 10

    def test_inconsistent_head_sizes_rejected(self):
        class FakeEnv:
            context_dim = 3
            max_choices = 4
            from repro.rl.spaces import ActionStep
            schedule = [ActionStep("device", 2), ActionStep("device", 3)]
        with pytest.raises(ValueError, match="inconsistent"):
            LSTMPolicy.for_env(FakeEnv())


class TestTeacherForcing:
    def test_logits_shapes(self, env, policy):
        rng = np.random.default_rng(5)
        ctx = np.stack([env.encode_task(env.sample_task(rng))
                        for _ in range(3)])
        batch = policy.rollout(ctx, env.schedule, rng)
        logits, values = policy.teacher_forward(ctx, batch.actions,
                                                env.schedule)
        assert len(logits) == env.episode_length
        for lg, step in zip(logits, env.schedule):
            assert lg.shape == (3, step.n_choices)
        assert values[0].shape == (3,)
        # consume the tape
        policy.teacher_backward([np.zeros_like(l) for l in logits])

    def test_bptt_gradient_matches_numeric(self, env):
        """Full NLL gradient check on a small policy over a short
        truncated schedule."""
        policy = LSTMPolicy.for_env(env, PolicyConfig(hidden_size=8, seed=1))
        sched = env.schedule[:6]
        rng = np.random.default_rng(6)
        ctx = np.stack([env.encode_task(env.sample_task(rng))
                        for _ in range(2)])
        actions = np.stack([[int(rng.integers(s.n_choices)) for s in sched]
                            for _ in range(2)])

        def nll():
            logits, _ = policy.teacher_forward(ctx, actions, sched)
            total = 0.0
            for t in range(len(sched)):
                logp = F.log_softmax(logits[t], axis=-1)
                total += -logp[np.arange(2), actions[:, t]].sum()
            # drop the tape so repeated calls are safe
            policy.teacher_backward([np.zeros_like(l) for l in logits])
            return total

        logits, _ = policy.teacher_forward(ctx, actions, sched)
        grads = []
        for t in range(len(sched)):
            p = np.exp(F.log_softmax(logits[t], axis=-1))
            g = p.copy()
            g[np.arange(2), actions[:, t]] -= 1.0
            grads.append(g)
        policy.zero_grad()
        policy.teacher_backward(grads)

        got = policy.cell.w_ih.grad.copy()
        num = numeric_grad(nll, policy.cell.w_ih.data, eps=1e-6)
        np.testing.assert_allclose(got, num, atol=1e-4)

        head = policy.heads["depth"]
        got_h = head.weight.grad.copy()
        num_h = numeric_grad(nll, head.weight.data, eps=1e-6)
        np.testing.assert_allclose(got_h, num_h, atol=1e-4)

    def test_state_dict_covers_heads(self, env, policy):
        sd = policy.state_dict()
        assert any(k.startswith("head_") for k in sd)
        assert "value_w" in sd
