"""Environment: schedule, decode, rewards, curriculum, relabeling."""

import numpy as np
import pytest

from repro.devices import desktop_gtx1080, rpi4
from repro.nas import MBV3_SPACE
from repro.rl import (ACTION_TYPES, EnvConfig, MurmurationEnv, Task,
                      bootstrap_actions, build_schedule)
from repro.netsim import NetworkCondition


@pytest.fixture(scope="module")
def env():
    return MurmurationEnv(MBV3_SPACE, [rpi4(), desktop_gtx1080()],
                          EnvConfig(slo_kind="latency"))


@pytest.fixture(scope="module")
def swarm_env():
    return MurmurationEnv(MBV3_SPACE, [rpi4()] * 5,
                          EnvConfig(slo_kind="latency"))


class TestSchedule:
    def test_structure(self, env):
        sched = env.schedule
        kinds = [s.kind for s in sched]
        assert kinds[0] == "resolution"
        assert kinds[-1] == "head_device"
        assert kinds.count("depth") == MBV3_SPACE.num_stages
        assert kinds.count("device") == MBV3_SPACE.num_stages * 4

    def test_unknown_kind_rejected(self):
        from repro.rl.spaces import ActionStep
        with pytest.raises(ValueError):
            ActionStep("banana", 3)

    def test_kind_ids_match_action_types(self, env):
        for s in env.schedule:
            assert ACTION_TYPES[s.kind_id] == s.kind

    def test_episode_length(self, env):
        # 1 resolution + 5*(5 settings + 4 devices) + 1 head device
        assert env.episode_length == 1 + 5 * 9 + 1


class TestDecode:
    def test_bootstrap_min_local(self, env):
        actions = bootstrap_actions(env)[0]
        arch, plan = env.decode(actions)
        assert arch.resolution == min(MBV3_SPACE.resolution_options)
        assert all(d == 2 for d in arch.depths)
        assert plan.devices_used() == (0,)

    def test_bootstrap_max_remote(self, env):
        actions = bootstrap_actions(env)[2]
        arch, plan = env.decode(actions)
        assert arch.resolution == max(MBV3_SPACE.resolution_options)
        # trunk runs on device 1, output returns to 0
        assert 1 in plan.devices_used()

    def test_wrong_length_rejected(self, env):
        with pytest.raises(ValueError):
            env.decode([0, 1])

    def test_out_of_range_action_rejected(self, env):
        actions = bootstrap_actions(env)[0].copy()
        actions[0] = 99
        with pytest.raises(ValueError):
            env.decode(actions)

    def test_decode_random_rollouts_always_valid(self, env):
        rng = np.random.default_rng(0)
        for _ in range(25):
            actions = [int(rng.integers(s.n_choices)) for s in env.schedule]
            arch, plan = env.decode(actions)
            arch.validate(MBV3_SPACE)
            plan.validate_for(env._graph(arch), env.num_devices)


class TestReward:
    def test_latency_slo_eq2(self, env):
        r_ok, ok = env.reward(latency_s=0.1, accuracy=78.0, slo=0.2)
        assert ok and r_ok > 0
        r_miss, miss = env.reward(latency_s=0.3, accuracy=78.0, slo=0.2)
        assert not miss and r_miss == 0.0

    def test_latency_slo_rewards_accuracy(self, env):
        hi, _ = env.reward(0.1, 78.0, 0.2)
        lo, _ = env.reward(0.1, 72.0, 0.2)
        assert hi > lo

    def test_accuracy_slo_eq3(self):
        env = MurmurationEnv(MBV3_SPACE, [rpi4(), desktop_gtx1080()],
                             EnvConfig(slo_kind="accuracy"))
        fast, ok = env.reward(latency_s=0.05, accuracy=76.0, slo=75.0)
        slow, _ = env.reward(latency_s=0.5, accuracy=76.0, slo=75.0)
        assert ok and fast > slow
        miss, sat = env.reward(latency_s=0.05, accuracy=74.0, slo=75.0)
        assert not sat and miss == 0.0

    def test_invalid_slo_kind(self):
        with pytest.raises(ValueError):
            EnvConfig(slo_kind="throughput")


class TestEvaluate:
    def test_outcome_fields(self, env):
        task = Task(0.3, NetworkCondition((200.0,), (20.0,)))
        actions = bootstrap_actions(env)[0]
        out = env.evaluate_actions(actions, task)
        assert out.latency_s > 0
        assert 68.0 < out.accuracy < 80.0
        assert out.satisfied == (out.latency_s <= 0.3)

    def test_better_network_not_slower(self, env):
        actions = bootstrap_actions(env)[2]  # max on remote
        slow = env.evaluate_actions(actions, Task(
            1.0, NetworkCondition((50.0,), (100.0,))))
        fast = env.evaluate_actions(actions, Task(
            1.0, NetworkCondition((400.0,), (5.0,))))
        assert fast.latency_s <= slow.latency_s


class TestTasks:
    def test_context_vector_dim(self, env):
        task = env.sample_task(np.random.default_rng(0))
        assert env.encode_task(task).shape == (env.context_dim,)

    def test_curriculum_freezes_inactive_dims(self, swarm_env):
        rng = np.random.default_rng(1)
        tasks = [swarm_env.sample_task(rng, active_dims=2)
                 for _ in range(20)]
        # dims beyond (slo, bw1): delay1 and all later stay at easiest
        for t in tasks:
            assert t.condition.delays_ms[0] == swarm_env.cfg.delay_range[0]
            assert t.condition.bandwidths_mbps[1] == swarm_env.cfg.bw_range[1]
        # slo and bw1 actually vary
        assert len({t.slo for t in tasks}) > 1
        assert len({t.condition.bandwidths_mbps[0] for t in tasks}) > 1

    def test_validation_tasks_grid(self, env):
        tasks = env.validation_tasks(points=3)
        assert len(tasks) == 27  # 3 slo x 3 bw x 3 delay

    def test_validation_tasks_multi_remote(self, swarm_env):
        tasks = swarm_env.validation_tasks(points=3)
        assert len(tasks) == 27
        assert all(t.condition.num_remote == 4 for t in tasks)


class TestRelabeling:
    def test_constraint_values_roundtrip(self, swarm_env):
        task = swarm_env.sample_task(np.random.default_rng(2))
        values = swarm_env.constraint_values(task)
        back = swarm_env.task_from_values(values)
        assert back == task

    def test_achieved_values_use_outcome(self, env):
        task = Task(0.3, NetworkCondition((100.0,), (10.0,)))
        out = env.evaluate_actions(bootstrap_actions(env)[0], task)
        vals = env.achieved_values(out, task)
        assert vals[0] == pytest.approx(out.latency_s)
        assert vals[1] == 100.0 and vals[2] == 10.0

    def test_relabeled_reward_positive(self, env):
        task = Task(0.001, NetworkCondition((100.0,), (10.0,)))  # impossible
        out = env.evaluate_actions(bootstrap_actions(env)[0], task)
        assert out.reward == 0.0  # missed the real goal
        assert env.relabeled_reward(out) > 0.0  # but achieves its own
