"""Shared RL utilities: bootstrap seeds, the satisfiability oracle,
policy evaluation and the supervised update."""

import numpy as np
import pytest

from repro.devices import desktop_gtx1080, rpi4
from repro.nas import MBV3_SPACE
from repro.nn.optim import Adam
from repro.rl import (EnvConfig, LSTMPolicy, MurmurationEnv, PolicyConfig,
                      Task, bootstrap_actions, evaluate_policy, satisfiable,
                      satisfiable_mask, supervised_update)
from repro.netsim import NetworkCondition


@pytest.fixture(scope="module")
def env():
    return MurmurationEnv(MBV3_SPACE, [rpi4(), desktop_gtx1080()],
                          EnvConfig(slo_kind="latency"))


class TestBootstrap:
    def test_four_seeds_for_two_devices(self, env):
        seeds = bootstrap_actions(env)
        assert len(seeds) == 4
        for s in seeds:
            assert s.shape == (env.episode_length,)

    def test_single_device_env_two_seeds(self):
        env1 = MurmurationEnv(MBV3_SPACE, [rpi4()], EnvConfig())
        assert len(bootstrap_actions(env1)) == 2

    def test_seeds_decode_to_extremes(self, env):
        seeds = bootstrap_actions(env)
        archs = [env.decode(s)[0] for s in seeds]
        flops = sorted({a.num_blocks() for a in archs})
        assert flops[0] == 10 and flops[-1] == 20  # min and max depth


class TestSatisfiable:
    def test_trivial_slo_satisfiable(self, env):
        task = Task(10.0, NetworkCondition((100.0,), (10.0,)))
        assert satisfiable(env, task)

    def test_impossible_slo_not_satisfiable(self, env):
        task = Task(1e-5, NetworkCondition((100.0,), (10.0,)))
        assert not satisfiable(env, task)

    def test_mask_shape(self, env):
        tasks = [env.sample_task(np.random.default_rng(i)) for i in range(5)]
        mask = satisfiable_mask(env, tasks)
        assert mask.shape == (5,) and mask.dtype == bool


class TestEvaluatePolicy:
    def test_result_fields(self, env):
        policy = LSTMPolicy.for_env(env, PolicyConfig(hidden_size=16))
        tasks = env.validation_tasks(points=2)
        mask = satisfiable_mask(env, tasks)
        res = evaluate_policy(policy, env, tasks, mask)
        assert res.n_tasks == len(tasks)
        assert 0.0 <= res.compliance <= 1.0
        assert res.raw_compliance <= res.compliance + 1e-9

    def test_compliance_normalization(self, env):
        """raw compliance counts all tasks; normalized only satisfiable."""
        policy = LSTMPolicy.for_env(env, PolicyConfig(hidden_size=16))
        tasks = [Task(1e-5, NetworkCondition((100.0,), (10.0,))),  # impossible
                 Task(10.0, NetworkCondition((100.0,), (10.0,)))]
        mask = satisfiable_mask(env, tasks)
        assert list(mask) == [False, True]
        res = evaluate_policy(policy, env, tasks, mask)
        assert res.n_satisfiable == 1


class TestSupervisedUpdate:
    def test_drives_policy_toward_targets(self, env):
        """Repeated imitation of one trajectory makes it the greedy one."""
        policy = LSTMPolicy.for_env(env, PolicyConfig(hidden_size=32, seed=3))
        opt = Adam(policy.parameters(), lr=3e-3)
        target = bootstrap_actions(env)[1]
        task = env.sample_task(np.random.default_rng(0))
        ctx = env.encode_task(task)[None, :].repeat(8, axis=0)
        actions = np.tile(target, (8, 1))
        losses = [supervised_update(policy, opt, env, ctx, actions)
                  for _ in range(30)]
        assert losses[-1] < losses[0] / 2
        greedy = policy.greedy_actions(env.encode_task(task), env.schedule)
        agreement = (greedy == target).mean()
        assert agreement > 0.9
