"""DQN baseline: TD mechanics and the sparse-reward failure mode."""

import numpy as np
import pytest

from repro.devices import desktop_gtx1080, rpi4
from repro.nas import MBV3_SPACE
from repro.rl import (DQNConfig, DQNTrainer, EnvConfig, MurmurationEnv,
                      satisfiable_mask)


@pytest.fixture(scope="module")
def env():
    return MurmurationEnv(MBV3_SPACE, [rpi4(), desktop_gtx1080()],
                          EnvConfig(slo_kind="latency"))


class TestDQN:
    def test_smoke(self, env):
        tasks = env.validation_tasks(points=2)
        mask = satisfiable_mask(env, tasks)
        tr = DQNTrainer(env, DQNConfig(total_steps=96, rollout_batch=16,
                                       eval_every=48, seed=0))
        hist = tr.train(tasks, mask)
        assert len(hist.steps) >= 1
        assert all(np.isfinite(hist.losses))
        assert len(tr.buffer) > 0

    def test_epsilon_schedule(self, env):
        tr = DQNTrainer(env, DQNConfig(epsilon_start=1.0, epsilon_end=0.2,
                                       epsilon_decay_steps=100))
        assert tr._epsilon() == pytest.approx(1.0)
        tr._collected = 100
        assert tr._epsilon() == pytest.approx(0.2)

    def test_target_sync_copies_weights(self, env):
        tr = DQNTrainer(env, DQNConfig(seed=1))
        tr.q.cell.w_ih.data += 1.0
        assert not np.allclose(tr.q.cell.w_ih.data, tr.target.cell.w_ih.data)
        tr._sync_target()
        np.testing.assert_allclose(tr.q.cell.w_ih.data,
                                   tr.target.cell.w_ih.data)

    def test_td_loss_decreases_on_fixed_buffer(self, env):
        """With a frozen buffer and target, TD regression must fit."""
        rng = np.random.default_rng(0)
        tr = DQNTrainer(env, DQNConfig(train_batch=8, seed=2))
        # fill buffer with a handful of episodes
        for _ in range(2):
            tr._collect()
        losses = [tr._td_update() for _ in range(25)]
        assert losses[-1] < losses[0]
