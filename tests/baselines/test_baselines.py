"""Neurosurgeon / ADCNN baselines and the method registry."""

import pytest

from repro.baselines import (AUGMENTED_BASELINES, FDSP_FINETUNE_PENALTY,
                             SWARM_BASELINES, adcnn_plan, make_baseline,
                             neurosurgeon_plan)
from repro.core import SLO
from repro.devices import desktop_gtx1080, graph_time, rpi4
from repro.models import get_model
from repro.netsim import Cluster, NetworkCondition
from repro.partition import simulate_latency, single_device_plan


@pytest.fixture
def augmented():
    return Cluster([rpi4(), desktop_gtx1080()],
                   NetworkCondition((200.0,), (20.0,)))


@pytest.fixture
def swarm():
    return Cluster([rpi4() for _ in range(5)],
                   NetworkCondition((200.0,) * 4, (20.0,) * 4))


class TestNeurosurgeon:
    def test_beats_both_extremes_or_matches(self, augmented):
        g = get_model("resnet50")
        r = neurosurgeon_plan(g, augmented)
        local = simulate_latency(g, single_device_plan(g), augmented).total_s
        assert r.latency_s <= local + 1e-12

    def test_big_model_offloads_everything(self, augmented):
        """ResNeXt101 on a Pi is hopeless: the optimal split ships the
        raw input to the GPU."""
        g = get_model("resnext101_32x8d")
        r = neurosurgeon_plan(g, augmented)
        assert r.split == 0

    def test_slow_network_keeps_small_model_local(self):
        cl = Cluster([rpi4(), desktop_gtx1080()],
                     NetworkCondition((1.0,), (200.0,)))
        g = get_model("mobilenet_v3_large")
        r = neurosurgeon_plan(g, cl)
        assert r.split == len(g)  # all local

    def test_accuracy_is_model_accuracy(self, augmented):
        g = get_model("resnet50")
        assert neurosurgeon_plan(g, augmented).accuracy == g.accuracy

    def test_invalid_remote(self, augmented):
        g = get_model("resnet50")
        with pytest.raises(ValueError):
            neurosurgeon_plan(g, augmented, remote=0)


class TestADCNN:
    def test_partitions_on_fast_network(self, swarm):
        cl = Cluster([rpi4() for _ in range(5)],
                     NetworkCondition((1000.0,) * 4, (2.0,) * 4))
        g = get_model("resnet50")
        r = adcnn_plan(g, cl)
        assert r.grid.ntiles > 1
        single = simulate_latency(g, single_device_plan(g), cl).total_s
        assert r.latency_s < single

    def test_falls_back_local_on_terrible_network(self):
        cl = Cluster([rpi4() for _ in range(5)],
                     NetworkCondition((0.5,) * 4, (500.0,) * 4))
        g = get_model("mobilenet_v3_large")
        r = adcnn_plan(g, cl)
        assert r.grid.ntiles == 1
        assert r.accuracy == g.accuracy  # no FDSP penalty unpartitioned

    def test_finetune_penalty_applied_when_partitioned(self, swarm):
        cl = Cluster([rpi4() for _ in range(5)],
                     NetworkCondition((1000.0,) * 4, (2.0,) * 4))
        g = get_model("resnet50")
        r = adcnn_plan(g, cl)
        assert r.accuracy == pytest.approx(g.accuracy - FDSP_FINETUNE_PENALTY)

    def test_plan_valid(self, swarm):
        g = get_model("mobilenet_v3_large")
        r = adcnn_plan(g, swarm)
        r.plan.validate_for(g, swarm.num_devices)


class TestRegistry:
    def test_names(self):
        m = make_baseline("neurosurgeon", "resnet50")
        assert m.name == "Neurosurgeon + ResNet50"

    def test_rosters_match_paper_legends(self):
        aug = {m.name for m in AUGMENTED_BASELINES}
        assert "Neurosurgeon + DenseNet161" in aug
        assert "ADCNN + MobileNetV3" in aug
        assert len(AUGMENTED_BASELINES) == 7
        swm = {m.name for m in SWARM_BASELINES}
        assert "ADCNN + ResNeXt101" in swm
        assert len(SWARM_BASELINES) == 6

    def test_evaluate_with_slo(self, augmented):
        m = make_baseline("neurosurgeon", "mobilenet_v3_large")
        out = m.evaluate(augmented, SLO.latency(1.0))
        assert out.satisfied
        out_tight = m.evaluate(augmented, SLO.latency(0.001))
        assert not out_tight.satisfied

    def test_densenet_never_meets_140ms(self):
        """The paper's headline infeasibility result (Fig. 13a)."""
        m = make_baseline("neurosurgeon", "densenet161")
        for bw in (50.0, 200.0, 400.0):
            for delay in (5.0, 50.0, 100.0):
                cl = Cluster([rpi4(), desktop_gtx1080()],
                             NetworkCondition((bw,), (delay,)))
                assert not m.evaluate(cl, SLO.latency_ms(140)).satisfied

    def test_mbv3_meets_140ms_on_good_network(self):
        m = make_baseline("neurosurgeon", "mobilenet_v3_large")
        cl = Cluster([rpi4(), desktop_gtx1080()],
                     NetworkCondition((400.0,), (5.0,)))
        assert m.evaluate(cl, SLO.latency_ms(140)).satisfied
