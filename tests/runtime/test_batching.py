"""Batched serving: formation, amortization, overlap, and FIFO parity."""

import numpy as np
import pytest

from repro.core import SLO, Murmuration, SearchDecisionEngine
from repro.devices import desktop_gtx1080, jetson_class, rpi4
from repro.eval.serving_load import _PinnedTimeEngine
from repro.faults import DeviceCrash, FaultInjector, FaultSchedule
from repro.nas import MBV3_SPACE
from repro.netsim import NetworkCondition, TraceConfig, step_trace
from repro.runtime import (BatchedServingStats, BatchingInferenceServer,
                           BatchPolicy, InferenceServer)

_DT = 0.02  # pinned per-miss decision cost: deterministic clocks


def _system(slo_ms=200.0, seed=0, faults=None, decision_s=_DT):
    devices = [rpi4(), desktop_gtx1080(), jetson_class()]
    engine = SearchDecisionEngine(MBV3_SPACE, devices, n_random_archs=4,
                                  seed=seed)
    if decision_s is not None:
        engine = _PinnedTimeEngine(engine, decision_s)
    return Murmuration(
        MBV3_SPACE, devices, NetworkCondition((300.0, 150.0), (10.0, 20.0)),
        engine, slo=SLO.latency_ms(slo_ms), use_predictor=False,
        monitor_noise=0.0, seed=seed, faults=faults)


class TestBatchPolicy:
    def test_invalid_max_batch(self):
        with pytest.raises(ValueError, match="max_batch"):
            BatchPolicy(max_batch=0)

    def test_invalid_max_wait(self):
        with pytest.raises(ValueError, match="max_wait_s"):
            BatchPolicy(max_wait_s=-0.1)


class TestBatchFormation:
    def test_accumulates_under_load(self):
        server = BatchingInferenceServer(
            _system(), arrival_rate_hz=60.0,
            policy=BatchPolicy(max_batch=8), seed=1)
        stats = server.run(num_requests=32)
        assert isinstance(stats, BatchedServingStats)
        assert len(stats.records) == 32
        assert sum(b.size for b in stats.batches) == 32
        assert stats.mean_batch_size > 1.0
        assert all(b.size <= 8 for b in stats.batches)

    def test_timeout_grows_underfull_batches(self):
        """At a rate too low to queue, only the fill timer batches."""
        eager = BatchingInferenceServer(
            _system(seed=2), arrival_rate_hz=3.0,
            policy=BatchPolicy(max_batch=4, max_wait_s=0.0), seed=3)
        patient = BatchingInferenceServer(
            _system(seed=2), arrival_rate_hz=3.0,
            policy=BatchPolicy(max_batch=4, max_wait_s=1.0), seed=3)
        a = eager.run(num_requests=16)
        b = patient.run(num_requests=16)
        assert a.mean_batch_size == 1.0
        assert b.mean_batch_size > 1.0
        # an under-full batch that waited dispatches when its timer
        # fires: one fill-timeout from its oldest member's arrival
        waited = [r for r in b.batches if 1 < r.size < 4]
        assert any(
            rec.close_s == pytest.approx(
                min(r.arrival for r in b.records
                    if abs(r.start - rec.decision_start_s) < 1e-12) + 1.0)
            for rec in waited)

    def test_records_sorted_and_consistent(self):
        server = BatchingInferenceServer(
            _system(seed=4), arrival_rate_hz=40.0,
            policy=BatchPolicy(max_batch=6), seed=4)
        stats = server.run(num_requests=24)
        for r in stats.records:
            assert r.finish >= r.start >= r.arrival - 1e-12


class TestAmortizedAccounting:
    def test_items_share_one_decision(self):
        server = BatchingInferenceServer(
            _system(seed=5), arrival_rate_hz=80.0,
            policy=BatchPolicy(max_batch=8), seed=5)
        stats = server.run(num_requests=24)
        i = 0
        for b in stats.batches:
            members = stats.records[i:i + b.size]
            i += b.size
            # per-item share sums back to the batch's real cost
            assert sum(r.decision_s for r in members) == pytest.approx(
                b.decision_s)
            assert sum(r.switch_s for r in members) == pytest.approx(
                b.switch_s)
            assert all(r.decision_s == pytest.approx(b.decision_s / b.size)
                       for r in members)
        assert stats.amortized_decisions == sum(
            b.size - 1 for b in stats.batches)
        assert stats.amortized_decisions > 0

    def test_batch_clock_is_sequential_within_batch(self):
        server = BatchingInferenceServer(
            _system(seed=6), arrival_rate_hz=80.0,
            policy=BatchPolicy(max_batch=8), seed=6)
        stats = server.run(num_requests=16)
        for b in stats.batches:
            assert b.exec_start_s >= (b.decision_start_s + b.decision_s
                                      + b.switch_s - 1e-12)
            assert b.finish_s >= b.exec_start_s
        members = {}
        for r in stats.records:
            members.setdefault(r.start, []).append(r)
        for group in members.values():
            # items execute back to back after the shared exec start
            finishes = sorted(r.finish for r in group)
            assert finishes == [r.finish for r in sorted(
                group, key=lambda r: r.finish)]


class TestOverlap:
    def _run(self, overlap, seed=7):
        # a condition changing every 50ms of simulated time guarantees
        # every batch's decision misses the cache — real decision cost
        # to hide on every batch
        trace = step_trace(TraceConfig(num_remote=2, steps=120, seed=seed,
                                       bw_range=(50.0, 400.0),
                                       delay_range=(5.0, 50.0)), period=1)
        server = BatchingInferenceServer(
            _system(seed=seed), arrival_rate_hz=80.0,
            policy=BatchPolicy(max_batch=8, overlap=overlap), seed=seed)
        return server.run(num_requests=32, condition_trace=trace,
                          trace_period_s=0.05)

    def test_decision_overlaps_previous_execution(self):
        stats = self._run(overlap=True)
        assert stats.overlap_saved_s > 0.0
        pipelined = [
            (prev, nxt) for prev, nxt in zip(stats.batches, stats.batches[1:])
            if nxt.decision_start_s < prev.finish_s - 1e-12]
        assert pipelined  # some decision ran under the previous batch
        for prev, nxt in zip(stats.batches, stats.batches[1:]):
            # executor is never double-booked ...
            assert nxt.exec_start_s >= prev.finish_s - 1e-12
            # ... and neither is the decision engine
            assert nxt.decision_start_s >= (prev.decision_start_s
                                            + prev.decision_s - 1e-12)

    def test_fully_hidden_decision_saves_its_whole_cost(self):
        stats = self._run(overlap=True)
        hidden = [
            nxt for prev, nxt in zip(stats.batches, stats.batches[1:])
            if not nxt.cache_hit
            and nxt.decision_start_s + nxt.decision_s <= prev.finish_s]
        assert hidden
        for b in hidden:
            assert b.overlap_saved_s == pytest.approx(_DT)

    def test_serial_mode_never_overlaps(self):
        stats = self._run(overlap=False)
        assert stats.overlap_saved_s == 0.0
        for prev, nxt in zip(stats.batches, stats.batches[1:]):
            assert nxt.decision_start_s >= prev.finish_s - 1e-12


class TestBatchedFaults:
    def test_per_item_outcomes_preserved(self):
        # both remotes die mid-run: the gateway must degrade, nothing
        # may fail, and every item keeps its own outcome
        schedule = FaultSchedule([DeviceCrash(0.5, 4.0, device=1),
                                  DeviceCrash(0.5, 4.0, device=2)])
        faults = FaultInjector(schedule, seed=8)
        server = BatchingInferenceServer(
            _system(seed=8, slo_ms=400.0, faults=faults),
            arrival_rate_hz=40.0, policy=BatchPolicy(max_batch=4), seed=8)
        stats = server.run(num_requests=20)
        assert len(stats.records) == 20
        counts = stats.outcome_counts()
        assert counts["failed"] == 0
        assert stats.completion_rate == 1.0
        assert counts["degraded"] + counts["retried"] > 0
        assert sum(counts.values()) == 20

    def test_batch_fails_over_as_a_unit(self):
        """Once an item in a batch degrades, the rest of the batch
        stays on the degraded plan instead of re-discovering the dead
        devices item by item."""
        schedule = FaultSchedule([DeviceCrash(0.0, 60.0, device=1),
                                  DeviceCrash(0.0, 60.0, device=2)])
        faults = FaultInjector(schedule, seed=9)
        server = BatchingInferenceServer(
            _system(seed=9, slo_ms=400.0, faults=faults),
            arrival_rate_hz=80.0, policy=BatchPolicy(max_batch=6), seed=9)
        stats = server.run(num_requests=18)
        big = [b for b in stats.batches if b.size > 1]
        assert big
        i = 0
        for b in stats.batches:
            members = stats.records[i:i + b.size]
            i += b.size
            degraded = [m for m in members if m.outcome == "degraded"]
            if degraded and b.size > 1:
                first = members.index(degraded[0])
                # everyone after the discovering item rides the carried
                # plan: degraded outcome, no fresh retries of its own
                for m in members[first + 1:]:
                    assert m.outcome == "degraded"
                    assert m.retries == 0


class TestFifoParity:
    def test_batch_size_one_is_bit_identical_to_fifo(self):
        """max_batch=1 must reproduce the FIFO server exactly — same
        floats, same flags, every field of every record."""
        fifo = InferenceServer(_system(seed=10), arrival_rate_hz=20.0,
                               seed=11)
        batched = BatchingInferenceServer(
            _system(seed=10), arrival_rate_hz=20.0,
            policy=BatchPolicy(max_batch=1), seed=11)
        a = fifo.run(num_requests=25)
        b = batched.run(num_requests=25)
        assert a.records == b.records  # frozen dataclass: exact equality

    def test_batch_size_one_parity_with_trace(self):
        trace = step_trace(TraceConfig(num_remote=2, steps=20, seed=12,
                                       bw_range=(50.0, 400.0),
                                       delay_range=(5.0, 50.0)), period=2)
        fifo = InferenceServer(_system(seed=12), arrival_rate_hz=30.0,
                               seed=13)
        batched = BatchingInferenceServer(
            _system(seed=12), arrival_rate_hz=30.0,
            policy=BatchPolicy(max_batch=1), seed=13)
        a = fifo.run(num_requests=20, condition_trace=trace,
                     trace_period_s=0.5)
        b = batched.run(num_requests=20, condition_trace=trace,
                        trace_period_s=0.5)
        assert a.records == b.records

    def test_summary_mentions_batches(self):
        server = BatchingInferenceServer(
            _system(seed=14), arrival_rate_hz=60.0,
            policy=BatchPolicy(max_batch=8), seed=14)
        stats = server.run(num_requests=16)
        assert "batches" in stats.summary()
        assert "amortized" in stats.summary()


class TestBatchedEvents:
    def test_events_fire_before_each_batch_decision(self):
        from repro.sim import EventLoop

        system = _system()
        loop = EventLoop(system.clock)
        fired = []
        loop.schedule(0.05, fired.append)
        loop.schedule(0.4, fired.append)
        server = BatchingInferenceServer(
            system, arrival_rate_hz=40.0,
            policy=BatchPolicy(max_batch=4, max_wait_s=0.05), seed=5,
            events=loop)
        stats = server.run(num_requests=24)
        assert fired == [0.05, 0.4]
        assert loop.pending == 0
        assert len(stats.records) == 24
