"""Serving loop: queueing behaviour and statistics."""

import numpy as np
import pytest

from repro.core import SLO, Murmuration, SearchDecisionEngine
from repro.devices import desktop_gtx1080, rpi4
from repro.nas import MBV3_SPACE
from repro.netsim import NetworkCondition, TraceConfig, step_trace
from repro.runtime import InferenceServer, RequestRecord, ServingStats


def _system(slo_ms=200.0, seed=0):
    devices = [rpi4(), desktop_gtx1080()]
    return Murmuration(
        MBV3_SPACE, devices, NetworkCondition((300.0,), (10.0,)),
        SearchDecisionEngine(MBV3_SPACE, devices, n_random_archs=4),
        slo=SLO.latency_ms(slo_ms), use_predictor=False,
        monitor_noise=0.0, seed=seed)


def _served_record(arrival, finish, start=None, tenant=None,
                   satisfied=True):
    start = arrival if start is None else start
    return RequestRecord(arrival=arrival, start=start, finish=finish,
                         inference_s=finish - start, decision_s=0.0,
                         switch_s=0.0, satisfied=satisfied, tenant=tenant)


def _shed_record(arrival, tenant=None):
    return RequestRecord(arrival=arrival, start=arrival, finish=arrival,
                         inference_s=0.0, decision_s=0.0, switch_s=0.0,
                         satisfied=False, outcome="shed", tenant=tenant)


class TestRequestRecord:
    def test_derived_times(self):
        r = RequestRecord(arrival=1.0, start=1.5, finish=2.0,
                          inference_s=0.4, decision_s=0.05, switch_s=0.05,
                          satisfied=True)
        assert r.queue_wait_s == pytest.approx(0.5)
        assert r.end_to_end_s == pytest.approx(1.0)


class TestShedAccounting:
    def test_trailing_shed_does_not_inflate_throughput(self):
        """Regression: throughput used ``records[-1].finish`` as the
        span's end.  A shed request has finish == arrival, so a shed
        arriving after the last served finish *shrank* the span and
        inflated throughput — shedding made the server look faster."""
        served = [_served_record(0.0, 10.0)]
        stats = ServingStats(records=served + [_shed_record(5.0)])
        assert stats.throughput_rps == pytest.approx(2 / 10.0)

    def test_percentiles_exclude_shed_zero_timelines(self):
        """Regression: sheds (zero end-to-end) were folded into the
        latency percentiles, so p50/p95 *improved* the more admission
        dropped — a reading that rewards shedding."""
        served = [_served_record(float(i), float(i) + 2.0)
                  for i in range(4)]
        clean = ServingStats(records=list(served))
        shedding = ServingStats(
            records=served + [_shed_record(float(i)) for i in range(4)])
        assert shedding.percentile_ms(50) == clean.percentile_ms(50)
        assert shedding.percentile_ms(95) == clean.percentile_ms(95)

    def test_queue_wait_excludes_sheds(self):
        served = [_served_record(0.0, 2.0, start=1.0)]
        stats = ServingStats(records=served + [_shed_record(0.5)])
        assert stats.mean_queue_wait_ms == pytest.approx(1000.0)

    def test_all_shed_run_degrades_to_zero(self):
        stats = ServingStats(records=[_shed_record(0.0), _shed_record(1.0)])
        assert stats.percentile_ms(95) == 0.0
        assert stats.mean_queue_wait_ms == 0.0
        assert stats.shed_count == 2

    def test_e2e_compliance_still_counts_sheds_against(self):
        """The deployment-facing number must not get the same pass: a
        shed request is an unanswered request."""
        stats = ServingStats(records=[_served_record(0.0, 0.1),
                                      _shed_record(1.0)])
        assert stats.e2e_compliance(1.0) == pytest.approx(0.5)


class TestTenantViews:
    def _stats(self):
        return ServingStats(records=[
            _served_record(0.0, 0.1, tenant="a"),
            _served_record(1.0, 3.0, tenant="b"),
            _shed_record(2.0, tenant="b"),
            _served_record(3.0, 3.1, tenant="a"),
        ])

    def test_tenants_first_seen_order(self):
        assert self._stats().tenants() == ["a", "b"]

    def test_per_tenant_partitions_records(self):
        views = self._stats().per_tenant()
        assert len(views["a"].records) == 2
        assert len(views["b"].records) == 2
        assert views["b"].shed_count == 1

    def test_worst_tenant_is_the_min(self):
        stats = self._stats()
        assert stats.worst_tenant_e2e_compliance(1.0) == 0.0  # tenant b
        assert stats.e2e_compliance(1.0) == pytest.approx(0.5)

    def test_untagged_records_fall_back_to_aggregate(self):
        stats = ServingStats(records=[_served_record(0.0, 0.1)])
        assert stats.per_tenant() == {}
        assert stats.worst_tenant_e2e_compliance(1.0) \
            == stats.e2e_compliance(1.0)

    def test_tenant_tags_ride_through_the_server(self):
        server = InferenceServer(_system(), arrival_rate_hz=2.0, seed=8)
        tags = ["a", "b"] * 5
        stats = server.run(num_requests=10, tenants=tags)
        assert [r.tenant for r in stats.records] == tags

    def test_tenant_length_mismatch_is_rejected(self):
        server = InferenceServer(_system(), arrival_rate_hz=2.0, seed=8)
        with pytest.raises(ValueError, match="tenants covers"):
            server.run(num_requests=10, tenants=["a"])

    def test_untagged_serving_is_bit_identical(self):
        """tenants=None must not move a single float (decision cost
        pinned: wall-clock decisions differ run to run by themselves)."""
        from repro.eval.serving_load import _PinnedTimeEngine

        def pinned():
            system = _system(seed=9)
            system.engine = _PinnedTimeEngine(system.engine, 0.01)
            return system

        a = InferenceServer(pinned(), arrival_rate_hz=2.0, seed=9).run(8)
        b = InferenceServer(pinned(), arrival_rate_hz=2.0,
                            seed=9).run(8, tenants=None)
        assert a.records == b.records


class TestServingStatsEmpty:
    def test_empty_stats_are_zero_not_crash(self):
        """Percentiles/means over zero records must degrade to 0.0."""
        stats = ServingStats()
        assert stats.percentile_ms(50) == 0.0
        assert stats.percentile_ms(95) == 0.0
        assert stats.mean_queue_wait_ms == 0.0
        assert stats.throughput_rps == 0.0
        assert stats.slo_compliance == 0.0
        assert "0 requests" in stats.summary()


class TestInferenceServer:
    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            InferenceServer(_system(), arrival_rate_hz=0.0)

    def test_invalid_num_requests(self):
        server = InferenceServer(_system(), arrival_rate_hz=2.0)
        with pytest.raises(ValueError, match="num_requests"):
            server.run(num_requests=0)
        with pytest.raises(ValueError, match="num_requests"):
            server.run(num_requests=-3)

    def test_outcome_counts_and_completion(self):
        server = InferenceServer(_system(), arrival_rate_hz=2.0, seed=1)
        stats = server.run(num_requests=8)
        counts = stats.outcome_counts()
        assert counts["ok"] == 8  # no faults injected
        assert counts["failed"] == 0
        assert stats.completion_rate == 1.0
        assert all(r.outcome == "ok" and r.retries == 0 and r.failovers == 0
                   for r in stats.records)
        assert "outcomes" not in stats.summary()  # healthy run stays terse

    def test_serves_all_requests(self):
        server = InferenceServer(_system(), arrival_rate_hz=2.0, seed=1)
        stats = server.run(num_requests=12)
        assert len(stats.records) == 12
        # timeline is consistent
        for r in stats.records:
            assert r.finish >= r.start >= r.arrival

    def test_fifo_no_overlap(self):
        server = InferenceServer(_system(), arrival_rate_hz=50.0, seed=2)
        stats = server.run(num_requests=10)
        for a, b in zip(stats.records, stats.records[1:]):
            assert b.start >= a.finish - 1e-12

    def test_overload_builds_queue(self):
        """Arrivals far above service capacity inflate queue waits."""
        light = InferenceServer(_system(seed=3), arrival_rate_hz=0.5,
                                seed=3).run(10)
        heavy = InferenceServer(_system(seed=3), arrival_rate_hz=100.0,
                                seed=3).run(10)
        assert heavy.mean_queue_wait_ms > light.mean_queue_wait_ms

    def test_stats_summary(self):
        stats = InferenceServer(_system(), arrival_rate_hz=2.0,
                                seed=4).run(8)
        s = stats.summary()
        assert "requests" in s and "compliance" in s
        assert stats.throughput_rps > 0
        assert stats.percentile_ms(95) >= stats.percentile_ms(50)

    def test_condition_trace_applied(self):
        trace = step_trace(TraceConfig(num_remote=1, steps=5, seed=5,
                                       bw_range=(50.0, 400.0),
                                       delay_range=(5.0, 50.0)), period=1)
        server = InferenceServer(_system(seed=6), arrival_rate_hz=2.0,
                                 seed=6)
        stats = server.run(num_requests=10, condition_trace=trace,
                           trace_period_s=1.0)
        assert len(stats.records) == 10

    def test_trace_indexed_by_service_start_not_arrival(self):
        """Regression: the trace was indexed by arrival time, so queued
        requests executed against a stale snapshot of the world.  A
        burst that arrives in the first trace cell but drains past it
        must see the later cells."""
        cond_a = NetworkCondition((300.0,), (10.0,))
        cond_b = NetworkCondition((30.0,), (80.0,))
        system = _system(slo_ms=400.0, seed=7)
        server = InferenceServer(system, arrival_rate_hz=200.0, seed=7)
        stats = server.run(num_requests=12, condition_trace=[cond_a, cond_b],
                           trace_period_s=0.5)
        # the burst arrives well inside cell 0 but queues past it
        assert all(r.arrival < 0.5 for r in stats.records)
        assert stats.records[-1].start > 0.5
        # the world the last request executed in is cell 1, which an
        # arrival-indexed lookup would never have applied
        assert system.cluster.condition == cond_b


class TestEventIntegration:
    """Servers advance time only through the shared event loop."""

    def test_scheduled_events_fire_during_the_run(self):
        from repro.sim import EventLoop

        system = _system()
        loop = EventLoop(system.clock)
        fired = []
        loop.schedule(0.1, fired.append)
        loop.schedule(0.5, fired.append)
        server = InferenceServer(system, arrival_rate_hz=20.0, seed=3,
                                 events=loop)
        stats = server.run(num_requests=20)
        assert fired == [0.1, 0.5]
        assert loop.pending == 0
        assert len(stats.records) == 20

    def test_empty_loop_is_byte_identical_to_no_loop(self):
        """The no-events guarantee at the serving layer: attaching an
        empty EventLoop must not perturb a single float.  Decision time
        is pinned — the raw engine measures wall time, which no two
        runs share."""
        from repro.eval.serving_load import _PinnedTimeEngine
        from repro.sim import EventLoop

        def _pinned():
            system = _system()
            system.engine = _PinnedTimeEngine(system.engine, 0.01)
            return system

        plain = InferenceServer(_pinned(), arrival_rate_hz=20.0,
                                seed=3).run(num_requests=20)
        system = _pinned()
        looped = InferenceServer(system, arrival_rate_hz=20.0, seed=3,
                                 events=EventLoop(system.clock))
        stats = looped.run(num_requests=20)
        for a, b in zip(plain.records, stats.records):
            assert (a.arrival, a.start, a.finish) == \
                (b.arrival, b.start, b.finish)
