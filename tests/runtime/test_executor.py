"""The distributed executor really runs plan-sliced submodels.

The key correctness property: executing under any fp32 unpartitioned
plan must reproduce the plain forward pass bit-for-bit, and partitioned/
quantized plans must stay close while showing real (nonzero) FDSP and
quantization effects.
"""

import numpy as np
import pytest

from repro.devices import rpi4
from repro.nas import (Supernet, build_graph, max_arch, min_arch, tiny_space)
from repro.netsim import Cluster, NetworkCondition
from repro.partition import (Grid, layerwise_split_plan, single_device_plan,
                             spatial_front_plan, spatial_plan)
from repro.runtime import DistributedExecutor


SPACE = tiny_space()


@pytest.fixture(scope="module")
def net():
    return Supernet(SPACE, seed=2).eval()


@pytest.fixture(scope="module")
def cluster():
    return Cluster([rpi4() for _ in range(5)],
                   NetworkCondition((100.0,) * 4, (10.0,) * 4))


@pytest.fixture(scope="module")
def x():
    return np.random.default_rng(0).normal(size=(2, 3, 32, 32))


@pytest.fixture(scope="module")
def arch():
    return max_arch(SPACE)


class TestUnpartitioned:
    def test_local_plan_bit_exact(self, net, cluster, x, arch):
        graph = build_graph(arch, SPACE)
        ex = DistributedExecutor(net, cluster)
        res = ex.execute(x, arch, single_device_plan(graph))
        direct = net.forward_arch(x, arch)
        np.testing.assert_allclose(res.logits, direct, atol=1e-12)
        assert res.comm_bytes == 0

    def test_layerwise_fp32_float32_exact(self, net, cluster, x, arch):
        """The 32-bit wire is float32, so a boundary crossing costs only
        single-precision rounding."""
        graph = build_graph(arch, SPACE)
        ex = DistributedExecutor(net, cluster)
        plan = layerwise_split_plan(graph, len(graph) // 2, remote=1)
        res = ex.execute(x, arch, plan)
        direct = net.forward_arch(x, arch)
        np.testing.assert_allclose(res.logits, direct, atol=1e-4)
        assert (res.logits.argmax(1) == direct.argmax(1)).all()
        assert res.num_messages >= 2  # out and back

    def test_latency_report_attached(self, net, cluster, x, arch):
        graph = build_graph(arch, SPACE)
        ex = DistributedExecutor(net, cluster)
        res = ex.execute(x, arch, layerwise_split_plan(graph, 0))
        assert res.latency_ms > 0
        assert res.report.num_transfers >= 1


class TestQuantizedWire:
    def test_8bit_transfer_perturbs_slightly(self, net, cluster, x, arch):
        graph = build_graph(arch, SPACE)
        ex = DistributedExecutor(net, cluster)
        plan = layerwise_split_plan(graph, len(graph) // 2, remote=1, bits=8)
        res = ex.execute(x, arch, plan)
        direct = net.forward_arch(x, arch)
        assert not np.allclose(res.logits, direct, atol=1e-12)
        # but predictions mostly agree
        agree = (res.logits.argmax(1) == direct.argmax(1)).mean()
        assert agree >= 0.5


class TestPartitioned:
    def test_spatial_runs_and_stays_close(self, net, cluster, x, arch):
        graph = build_graph(arch, SPACE)
        ex = DistributedExecutor(net, cluster)
        plan = spatial_front_plan(graph, Grid(2, 2), [1, 2, 3, 4], min_hw=8)
        res = ex.execute(x, arch, plan)
        assert res.partitioned_segments >= 1
        direct = net.forward_arch(x, arch)
        # FDSP zero-padding is a real approximation: different but close.
        assert not np.allclose(res.logits, direct, atol=1e-9)
        corr = np.corrcoef(res.logits.ravel(), direct.ravel())[0, 1]
        assert corr > 0.8

    def test_min_arch_resolution_16(self, net, cluster, arch):
        a = min_arch(SPACE)
        graph = build_graph(a, SPACE)
        ex = DistributedExecutor(net, cluster)
        x16 = np.random.default_rng(3).normal(size=(1, 3, 16, 16))
        res = ex.execute(x16, a, spatial_front_plan(graph, Grid(1, 2),
                                                    [1, 2], min_hw=4))
        assert res.logits.shape == (1, SPACE.num_classes)

    def test_wrong_resolution_rejected(self, net, cluster, x):
        a = min_arch(SPACE)  # wants 16, x is 32
        graph = build_graph(a, SPACE)
        ex = DistributedExecutor(net, cluster)
        with pytest.raises(ValueError, match="resolution"):
            ex.execute(x, a, single_device_plan(graph))
