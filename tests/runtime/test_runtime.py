"""Runtime subsystems: clock, transport, reconfig, monitoring predictor."""

import numpy as np
import pytest

from repro.devices import rpi4
from repro.models import get_model
from repro.netsim import Cluster, Measurement, NetworkCondition
from repro.runtime import (FixedModelStore, LinearPredictor, ModelReconfig,
                           MonitoringPredictor, SimulatedClock, Transport)


@pytest.fixture
def cluster():
    return Cluster([rpi4(), rpi4()], NetworkCondition((100.0,), (10.0,)))


class TestClock:
    def test_advance(self):
        c = SimulatedClock()
        assert c.advance(1.5) == 1.5
        assert c.now == 1.5

    def test_advance_to(self):
        c = SimulatedClock(10.0)
        c.advance_to(12.0)
        assert c.now == 12.0

    def test_no_rewind(self):
        c = SimulatedClock(5.0)
        with pytest.raises(ValueError):
            c.advance(-1)
        with pytest.raises(ValueError):
            c.advance_to(1.0)


class TestTransport:
    def test_local_send_free_and_lossless(self, cluster):
        t = Transport(cluster)
        x = np.random.default_rng(0).normal(size=(2, 3, 4, 4))
        msg = t.send_tensor(x, 0, 0, 8, now=1.0)
        assert msg.delivered_at == 1.0
        np.testing.assert_allclose(msg.payload, x)

    def test_remote_send_costs_time(self, cluster):
        t = Transport(cluster)
        x = np.ones((1, 3, 16, 16))
        msg = t.send_tensor(x, 0, 1, 32, now=0.0)
        assert msg.delivered_at > 0.01  # at least the 10ms delay

    def test_quantization_error_is_real(self, cluster):
        t = Transport(cluster)
        x = np.random.default_rng(1).normal(size=(1, 2, 8, 8))
        msg = t.send_tensor(x, 0, 1, 8, now=0.0)
        err = np.abs(msg.payload - x).max()
        assert 0 < err < np.abs(x).max() / 100

    def test_8bit_smaller_than_fp32(self, cluster):
        t = Transport(cluster)
        x = np.ones((1, 4, 16, 16))
        m8 = t.send_tensor(x, 0, 1, 8, 0.0)
        m32 = t.send_tensor(x, 0, 1, 32, 0.0)
        assert m8.nbytes < m32.nbytes / 3

    def test_accounting(self, cluster):
        t = Transport(cluster)
        x = np.ones((1, 1, 4, 4))
        t.send_tensor(x, 0, 1, 32, 0.0)
        t.send_tensor(x, 0, 0, 32, 0.0)  # local: not counted
        t.send_control(0, 1, {"op": "reconfig"}, 0.0)
        assert t.num_messages == 2
        assert t.total_bytes > 0
        t.reset_log()
        assert t.num_messages == 0

    def test_reset_log_resets_every_aggregate(self, cluster):
        """Regression: aggregates must stay consistent with ``log``
        across resets — a reset window starts from a true zero."""
        t = Transport(cluster)
        x = np.ones((1, 1, 8, 8))
        t.send_tensor(x, 0, 1, 32, 0.0)
        t.send_control(0, 1, "ping", 0.0)
        first_bytes = t.total_bytes
        assert first_bytes > 0 and t.num_messages == 2 and len(t.log) == 2
        t.reset_log()
        assert (t.total_bytes, t.num_messages, t.num_retries,
                t.wasted_s) == (0, 0, 0, 0.0)
        assert t.log == []
        # the next window accumulates from scratch, not on stale totals
        t.send_tensor(x, 0, 1, 32, 0.0)
        assert t.num_messages == 1
        assert t.total_bytes == first_bytes - 256  # minus the control msg


class TestReconfig:
    def test_switch_tracks_active_arch(self):
        from repro.nas import Supernet, max_arch, min_arch, tiny_space
        space = tiny_space()
        net = Supernet(space, seed=0)
        rc = ModelReconfig(net, rpi4())
        with pytest.raises(RuntimeError):
            rc.active_units
        rec = rc.switch(max_arch(space))
        assert rec.kind == "supernet"
        assert rec.modeled_time_s < 0.05
        assert rc.active_arch == max_arch(space)
        rc.switch(min_arch(space))
        assert len(rc.history) == 2

    def test_fixed_store_reload_costs(self):
        store = FixedModelStore(rpi4())
        g1 = get_model("mobilenet_v3_large")
        g2 = get_model("resnet50")
        r1 = store.switch(g1)
        assert r1.modeled_time_s > 0.1  # cold load from SD card
        r_again = store.switch(g1)
        assert r_again.modeled_time_s < 0.01  # resident
        r2 = store.switch(g2)
        assert r2.modeled_time_s > r1.modeled_time_s  # bigger weights

    def test_fixed_store_eviction(self):
        g1 = get_model("mobilenet_v3_large")
        store = FixedModelStore(rpi4(),
                                resident_budget=g1.total_weight_bytes + 1)
        store.switch(g1)
        store.switch(get_model("resnet50"))  # evicts g1
        r = store.switch(g1)
        assert r.modeled_time_s > 0.1  # cold again


class TestLinearPredictor:
    def test_requires_window(self):
        with pytest.raises(ValueError):
            LinearPredictor(window=1)

    def test_empty_returns_none(self):
        assert LinearPredictor().predict(1.0) is None

    def test_single_sample_constant(self):
        p = LinearPredictor()
        p.observe(0.0, 5.0)
        assert p.predict(10.0) == 5.0

    def test_extrapolates_linear_trend(self):
        p = LinearPredictor(window=5)
        for t in range(5):
            p.observe(float(t), 10.0 + 2.0 * t)
        assert p.predict(5.0) == pytest.approx(20.0, abs=1e-9)

    def test_window_slides(self):
        p = LinearPredictor(window=3)
        for t in range(10):
            p.observe(float(t), float(t))
        assert p.n == 3


class TestMonitoringPredictor:
    def _measurement(self, device, t, bw, delay):
        return Measurement(device, bw, delay, t, "active")

    def test_predicts_trend(self):
        mp = MonitoringPredictor(num_remote=1, window=6)
        for t in range(6):
            mp.observe(self._measurement(1, float(t), 100.0 - 5 * t, 10.0))
        cond = mp.predict(6.0)
        assert cond.bandwidths_mbps[0] == pytest.approx(70.0, abs=1.0)
        assert cond.delays_ms[0] == pytest.approx(10.0, abs=0.5)

    def test_clamps_to_physical_range(self):
        mp = MonitoringPredictor(num_remote=1, bw_range=(1.0, 1000.0))
        for t in range(6):
            mp.observe(self._measurement(1, float(t), 50.0 - 20 * t, 5.0))
        cond = mp.predict(20.0)
        assert cond.bandwidths_mbps[0] == 1.0  # clamped, not negative

    def test_fallback_for_unseen_devices(self):
        mp = MonitoringPredictor(num_remote=2)
        mp.observe(self._measurement(1, 0.0, 100.0, 10.0))
        fallback = NetworkCondition((100.0, 200.0), (10.0, 20.0))
        cond = mp.predict(1.0, fallback=fallback)
        assert cond.bandwidths_mbps[1] == 200.0

    def test_none_without_fallback(self):
        mp = MonitoringPredictor(num_remote=2)
        assert mp.predict(1.0) is None

    def test_invalid_device(self):
        mp = MonitoringPredictor(num_remote=1)
        with pytest.raises(ValueError):
            mp.observe(self._measurement(5, 0.0, 1.0, 1.0))
