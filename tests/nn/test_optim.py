"""Optimizers: convergence on known problems, state handling, clipping."""

import numpy as np
import pytest

from repro.nn import SGD, Adam, CosineLR, clip_grad_norm
from repro.nn.layers import Parameter


def quad_problem(start):
    """min (x - 3)^2 elementwise."""
    p = Parameter(np.full(4, float(start)))

    def step_grad():
        p.zero_grad()
        p.grad += 2 * (p.data - 3.0)

    return p, step_grad


class TestSGD:
    def test_converges(self):
        p, grad = quad_problem(10.0)
        opt = SGD([p], lr=0.1, momentum=0.0)
        for _ in range(200):
            grad()
            opt.step()
        np.testing.assert_allclose(p.data, 3.0, atol=1e-6)

    def test_momentum_accelerates(self):
        p1, g1 = quad_problem(10.0)
        p2, g2 = quad_problem(10.0)
        plain = SGD([p1], lr=0.01, momentum=0.0)
        mom = SGD([p2], lr=0.01, momentum=0.9)
        for _ in range(30):
            g1(); plain.step()
            g2(); mom.step()
        assert abs(p2.data[0] - 3.0) < abs(p1.data[0] - 3.0)

    def test_weight_decay_shrinks(self):
        p = Parameter(np.ones(3))
        opt = SGD([p], lr=0.1, momentum=0.0, weight_decay=1.0)
        opt.step()  # grad is zero; only decay acts
        assert (p.data < 1.0).all()

    def test_empty_params_raises(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)


class TestAdam:
    def test_converges(self):
        p, grad = quad_problem(-5.0)
        opt = Adam([p], lr=0.2)
        for _ in range(300):
            grad()
            opt.step()
        np.testing.assert_allclose(p.data, 3.0, atol=1e-3)

    def test_bias_correction_first_step(self):
        p = Parameter(np.zeros(1))
        opt = Adam([p], lr=0.1)
        p.grad += np.array([1.0])
        opt.step()
        # With bias correction the first step is ~ -lr regardless of betas.
        np.testing.assert_allclose(p.data, -0.1, atol=1e-6)

    def test_zero_grad(self):
        p = Parameter(np.zeros(2))
        opt = Adam([p], lr=0.1)
        p.grad += 5.0
        opt.zero_grad()
        assert (p.grad == 0).all()


class TestClipGradNorm:
    def test_clips_when_large(self):
        p = Parameter(np.zeros(4))
        p.grad += 10.0
        pre = clip_grad_norm([p], max_norm=1.0)
        assert pre == pytest.approx(20.0)
        assert np.linalg.norm(p.grad) == pytest.approx(1.0)

    def test_no_clip_when_small(self):
        p = Parameter(np.zeros(4))
        p.grad += 0.01
        clip_grad_norm([p], max_norm=1.0)
        np.testing.assert_allclose(p.grad, 0.01)


class TestCosineLR:
    def test_decays_to_min(self):
        p = Parameter(np.zeros(1))
        opt = SGD([p], lr=1.0)
        sched = CosineLR(opt, total_steps=100, min_lr=0.1)
        for _ in range(100):
            sched.step()
        assert opt.lr == pytest.approx(0.1, abs=1e-6)

    def test_warmup_ramps(self):
        p = Parameter(np.zeros(1))
        opt = SGD([p], lr=1.0)
        sched = CosineLR(opt, total_steps=20, warmup_steps=10)
        lrs = [sched.step() for _ in range(10)]
        assert lrs == sorted(lrs)
        assert lrs[-1] == pytest.approx(1.0)

    def test_monotone_after_warmup(self):
        p = Parameter(np.zeros(1))
        opt = SGD([p], lr=1.0)
        sched = CosineLR(opt, total_steps=50)
        lrs = [sched.step() for _ in range(50)]
        assert all(a >= b - 1e-12 for a, b in zip(lrs, lrs[1:]))
