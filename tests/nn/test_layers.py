"""Module-level layer tests: shapes, gradients, state management."""

import numpy as np
import pytest

from repro import nn
from tests.conftest import numeric_grad


@pytest.fixture
def rng():
    return np.random.default_rng(1)


class TestModuleInfra:
    def test_parameters_enumerated(self, rng):
        m = nn.Sequential(nn.Conv2d(3, 4, 3), nn.BatchNorm2d(4), nn.Linear(4, 2))
        names = [p.name for p in m.parameters()]
        assert "weight" in names and "gamma" in names
        assert m.num_parameters() > 0

    def test_state_dict_roundtrip(self, rng):
        m1 = nn.Linear(4, 3, rng=rng)
        m2 = nn.Linear(4, 3, rng=rng)
        x = rng.normal(size=(2, 4))
        assert not np.allclose(m1(x), m2(x))
        m2.load_state_dict(m1.state_dict())
        np.testing.assert_allclose(m1(x), m2(x))

    def test_load_state_dict_missing_key(self):
        m = nn.Linear(4, 3)
        with pytest.raises(KeyError):
            m.load_state_dict({})

    def test_load_state_dict_shape_mismatch(self):
        m = nn.Linear(4, 3)
        sd = m.state_dict()
        sd["weight"] = np.zeros((2, 2))
        with pytest.raises(ValueError, match="shape mismatch"):
            m.load_state_dict(sd)

    def test_train_eval_propagates(self):
        m = nn.Sequential(nn.BatchNorm2d(3), nn.Sequential(nn.BatchNorm2d(3)))
        m.eval()
        assert all(not mod.training for mod in m.modules())
        m.train()
        assert all(mod.training for mod in m.modules())

    def test_zero_grad(self, rng):
        m = nn.Linear(3, 2, rng=rng)
        x = rng.normal(size=(2, 3))
        m.backward_input = m(x)
        m.backward(np.ones((2, 2)))
        assert (m.weight.grad != 0).any()
        m.zero_grad()
        assert (m.weight.grad == 0).all()


class TestConvLayers:
    def test_conv_output_shape(self, rng):
        conv = nn.Conv2d(3, 8, 5, stride=2, rng=rng)
        out = conv(rng.normal(size=(2, 3, 16, 16)))
        assert out.shape == (2, 8, 8, 8)

    def test_conv_accumulates_grad(self, rng):
        conv = nn.Conv2d(2, 2, 3, rng=rng)
        x = rng.normal(size=(1, 2, 4, 4))
        conv(x)
        conv.backward(np.ones((1, 2, 4, 4)))
        g1 = conv.weight.grad.copy()
        conv(x)
        conv.backward(np.ones((1, 2, 4, 4)))
        np.testing.assert_allclose(conv.weight.grad, 2 * g1)

    def test_depthwise_preserves_channels(self, rng):
        dw = nn.DepthwiseConv2d(5, 3, rng=rng)
        out = dw(rng.normal(size=(2, 5, 8, 8)))
        assert out.shape == (2, 5, 8, 8)


class TestSqueezeExcite:
    def test_gating_bounded(self, rng):
        se = nn.SqueezeExcite(8, rng=rng)
        x = rng.normal(size=(2, 8, 4, 4))
        out = se(x)
        assert out.shape == x.shape
        # |out| <= |x| elementwise because the gate is in [0, 1]
        assert (np.abs(out) <= np.abs(x) + 1e-12).all()

    def test_gradient_matches_numeric(self, rng):
        se = nn.SqueezeExcite(4, rng=rng)
        x = rng.normal(size=(1, 4, 3, 3))

        def loss():
            return float((se(x) ** 2).sum())

        out = se(x)
        gx = se.backward(2 * out)
        np.testing.assert_allclose(gx, numeric_grad(loss, x), atol=1e-5)


class TestSequential:
    def test_forward_backward_chain(self, rng):
        m = nn.Sequential(
            nn.Conv2d(2, 4, 3, rng=rng), nn.BatchNorm2d(4), nn.ReLU(),
            nn.GlobalAvgPool(), nn.Linear(4, 3, rng=rng))
        x = rng.normal(size=(2, 2, 6, 6))
        out = m(x)
        assert out.shape == (2, 3)
        gx = m.backward(np.ones_like(out))
        assert gx.shape == x.shape

    def test_append_and_index(self):
        m = nn.Sequential(nn.ReLU())
        m.append(nn.HSwish())
        assert len(m) == 2
        assert isinstance(m[1], nn.HSwish)

    def test_flatten_roundtrip(self, rng):
        f = nn.Flatten()
        x = rng.normal(size=(2, 3, 4, 4))
        y = f(x)
        assert y.shape == (2, 48)
        assert f.backward(y).shape == x.shape

    def test_whole_net_gradient(self, rng):
        """End-to-end numeric gradient through a small CNN (eval-mode BN
        to keep the function deterministic)."""
        m = nn.Sequential(
            nn.Conv2d(1, 2, 3, rng=rng), nn.HSwish(),
            nn.GlobalAvgPool(), nn.Linear(2, 2, rng=rng))
        x = rng.normal(size=(1, 1, 5, 5))
        w = m[0].weight.data

        def loss():
            return float((m(x) ** 2).sum())

        out = m(x)
        m.zero_grad()
        m.backward(2 * out)
        np.testing.assert_allclose(m[0].weight.grad, numeric_grad(loss, w),
                                   atol=1e-5)
