"""Feature-map quantization: error bounds, wire sizing, properties."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.nn import (SUPPORTED_BITS, dequantize, fake_quantize, quantize,
                      wire_bytes)


class TestQuantizeBasics:
    def test_passthrough_32(self):
        x = np.random.default_rng(0).normal(size=(3, 4))
        qt = quantize(x, 32)
        np.testing.assert_allclose(dequantize(qt), x, atol=1e-6)

    def test_unsupported_bits(self):
        with pytest.raises(ValueError, match="unsupported bitwidth"):
            quantize(np.ones(3), 4)

    @pytest.mark.parametrize("bits,rel", [(8, 1 / 120.0), (16, 1 / 30000.0)])
    def test_error_bound(self, bits, rel):
        x = np.random.default_rng(1).normal(size=1000)
        err = np.abs(dequantize(quantize(x, bits)) - x).max()
        assert err <= np.abs(x).max() * rel

    def test_zero_tensor(self):
        qt = quantize(np.zeros((2, 2)), 8)
        np.testing.assert_allclose(dequantize(qt), 0.0)

    def test_dtype_narrowing(self):
        x = np.random.default_rng(2).normal(size=10)
        assert quantize(x, 8).data.dtype == np.int8
        assert quantize(x, 16).data.dtype == np.int16

    def test_nbytes_accounts_header(self):
        qt = quantize(np.ones(100), 8)
        assert qt.nbytes == 32 + 100

    def test_fake_quantize_idempotent_ish(self):
        x = np.random.default_rng(3).normal(size=50)
        y = fake_quantize(x, 8)
        z = fake_quantize(y, 8)
        np.testing.assert_allclose(y, z, atol=1e-9)


class TestWireBytes:
    @pytest.mark.parametrize("bits,expect", [(8, 32 + 10), (16, 32 + 20),
                                             (32, 32 + 40)])
    def test_sizes(self, bits, expect):
        assert wire_bytes(10, bits) == expect

    def test_monotone_in_elements(self):
        assert wire_bytes(100, 8) < wire_bytes(200, 8)

    def test_8bit_quarter_of_32(self):
        big = 10_000
        assert wire_bytes(big, 8) - 32 == (wire_bytes(big, 32) - 32) // 4


class TestQuantizeProperties:
    @given(arrays(np.float64, st.integers(1, 64),
                  elements=st.floats(-1e6, 1e6)),
           st.sampled_from([8, 16]))
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_bounded(self, x, bits):
        qt = quantize(x, bits)
        back = dequantize(qt)
        amax = np.abs(x).max()
        if amax > 0:
            # max error is half a quantization step
            step = amax / (2 ** (bits - 1) - 1)
            assert np.abs(back - x).max() <= step * 0.5 + 1e-12

    @given(arrays(np.float64, st.integers(1, 32),
                  elements=st.floats(-100, 100)))
    @settings(max_examples=50, deadline=None)
    def test_sign_preserved(self, x):
        back = dequantize(quantize(x, 8))
        # signs may only flip through rounding to zero
        assert ((np.sign(back) == np.sign(x)) | (back == 0)).all()

    @given(st.integers(0, 10 ** 9), st.sampled_from(SUPPORTED_BITS))
    @settings(max_examples=50, deadline=None)
    def test_wire_bytes_positive_and_ordered(self, n, bits):
        b = wire_bytes(n, bits)
        assert b >= 32
        if bits < 32:
            assert b <= wire_bytes(n, 32)
