"""LSTM cell: shapes, gating behaviour and full-BPTT gradient checks."""

import numpy as np
import pytest

from repro.nn import LSTMCell
from tests.conftest import numeric_grad


@pytest.fixture
def rng():
    return np.random.default_rng(5)


class TestLSTMForward:
    def test_zero_state_shape(self):
        cell = LSTMCell(3, 7)
        h, c = cell.zero_state(4)
        assert h.shape == (4, 7) and c.shape == (4, 7)
        assert (h == 0).all() and (c == 0).all()

    def test_step_shapes(self, rng):
        cell = LSTMCell(3, 7, rng=rng)
        h, state = cell.forward_step(rng.normal(size=(2, 3)),
                                     cell.zero_state(2))
        assert h.shape == (2, 7)
        assert state[0] is h

    def test_sequence_forward(self, rng):
        cell = LSTMCell(3, 5, rng=rng)
        xs = rng.normal(size=(6, 2, 3))
        out = cell.forward(xs)
        assert out.shape == (6, 2, 5)

    def test_hidden_bounded_by_tanh(self, rng):
        cell = LSTMCell(2, 4, rng=rng)
        state = cell.zero_state(1)
        for _ in range(20):
            h, state = cell.forward_step(rng.normal(size=(1, 2)) * 10, state)
        assert np.abs(h).max() <= 1.0

    def test_forget_bias_initialized_to_one(self):
        cell = LSTMCell(2, 4)
        hs = 4
        np.testing.assert_allclose(cell.bias.data[hs:2 * hs], 1.0)

    def test_state_carries_information(self, rng):
        """Different histories must produce different hidden states."""
        cell = LSTMCell(2, 4, rng=rng)
        x = rng.normal(size=(1, 2))
        _, s1 = cell.forward_step(x, cell.zero_state(1), record=False)
        _, s2 = cell.forward_step(-x, cell.zero_state(1), record=False)
        h1, _ = cell.forward_step(x, s1, record=False)
        h2, _ = cell.forward_step(x, s2, record=False)
        assert not np.allclose(h1, h2)


class TestBPTT:
    def _loss_through_time(self, cell, xs):
        state = cell.zero_state(xs.shape[1])
        total = 0.0
        for t in range(xs.shape[0]):
            h, state = cell.forward_step(xs[t], state, record=False)
            total += float((h ** 2).sum())
        return total

    def test_input_gradients(self, rng):
        cell = LSTMCell(3, 4, rng=rng)
        xs = rng.normal(size=(3, 2, 3))

        def loss():
            return self._loss_through_time(cell, xs)

        cell.reset_tape()
        state = cell.zero_state(2)
        grads_h = []
        for t in range(3):
            h, state = cell.forward_step(xs[t], state, record=True)
            grads_h.append(2 * h)
        gx = cell.backward_through_time(grads_h)
        num = numeric_grad(loss, xs)
        for t in range(3):
            np.testing.assert_allclose(gx[t], num[t], atol=1e-5)

    def test_weight_gradients(self, rng):
        cell = LSTMCell(2, 3, rng=rng)
        xs = rng.normal(size=(4, 1, 2))

        def loss():
            return self._loss_through_time(cell, xs)

        cell.zero_grad()
        cell.reset_tape()
        state = cell.zero_state(1)
        grads_h = []
        for t in range(4):
            h, state = cell.forward_step(xs[t], state, record=True)
            grads_h.append(2 * h)
        cell.backward_through_time(grads_h)
        np.testing.assert_allclose(cell.w_ih.grad,
                                   numeric_grad(loss, cell.w_ih.data),
                                   atol=1e-5)
        np.testing.assert_allclose(cell.w_hh.grad,
                                   numeric_grad(loss, cell.w_hh.data),
                                   atol=1e-5)
        np.testing.assert_allclose(cell.bias.grad,
                                   numeric_grad(loss, cell.bias.data),
                                   atol=1e-5)

    def test_none_head_gradients_allowed(self, rng):
        cell = LSTMCell(2, 3, rng=rng)
        state = cell.zero_state(1)
        h1, state = cell.forward_step(rng.normal(size=(1, 2)), state)
        h2, state = cell.forward_step(rng.normal(size=(1, 2)), state)
        gx = cell.backward_through_time([None, np.ones((1, 3))])
        assert len(gx) == 2
        assert np.isfinite(gx[0]).all()

    def test_mismatched_grads_raise(self, rng):
        cell = LSTMCell(2, 3, rng=rng)
        cell.forward_step(rng.normal(size=(1, 2)), cell.zero_state(1))
        with pytest.raises(ValueError, match="head gradients"):
            cell.backward_through_time([None, None])

    def test_tape_cleared_after_backward(self, rng):
        cell = LSTMCell(2, 3, rng=rng)
        cell.forward_step(rng.normal(size=(1, 2)), cell.zero_state(1))
        cell.backward_through_time([np.ones((1, 3))])
        assert len(cell._tape) == 0
