"""Numerical correctness of the NN primitives: every backward pass is
checked against central differences, and im2col/col2im are verified to
be adjoint."""

import numpy as np
import pytest

from repro.nn import functional as F
from tests.conftest import numeric_grad


@pytest.fixture
def rng():
    return np.random.default_rng(42)


# ---------------------------------------------------------------------------
# im2col / col2im
# ---------------------------------------------------------------------------

class TestIm2col:
    def test_shape(self, rng):
        x = rng.normal(size=(2, 3, 8, 8))
        cols = F.im2col(x, 3, 3, stride=1, pad=1)
        assert cols.shape == (2 * 8 * 8, 3 * 9)

    def test_stride_shape(self, rng):
        x = rng.normal(size=(1, 2, 9, 9))
        cols = F.im2col(x, 3, 3, stride=2, pad=1)
        assert cols.shape == (5 * 5, 2 * 9)

    def test_values_identity_kernel(self, rng):
        """A 1x1 im2col is just a channel-last reshape."""
        x = rng.normal(size=(2, 3, 4, 4))
        cols = F.im2col(x, 1, 1)
        expect = x.transpose(0, 2, 3, 1).reshape(-1, 3)
        np.testing.assert_allclose(cols, expect)

    def test_adjoint_property(self, rng):
        """<im2col(x), y> == <x, col2im(y)> for all x, y."""
        x = rng.normal(size=(1, 2, 6, 6))
        cols = F.im2col(x, 3, 3, stride=2, pad=1)
        y = rng.normal(size=cols.shape)
        lhs = float((cols * y).sum())
        xt = F.col2im(y, x.shape, 3, 3, stride=2, pad=1)
        rhs = float((x * xt).sum())
        assert abs(lhs - rhs) < 1e-9

    def test_col2im_roundtrip_counts(self):
        """col2im(im2col(ones)) counts patch memberships."""
        x = np.ones((1, 1, 4, 4))
        cols = F.im2col(x, 2, 2, stride=2)
        back = F.col2im(cols, x.shape, 2, 2, stride=2)
        np.testing.assert_allclose(back, 1.0)  # disjoint patches


# ---------------------------------------------------------------------------
# conv2d
# ---------------------------------------------------------------------------

class TestConv2d:
    def test_matches_naive(self, rng):
        x = rng.normal(size=(1, 2, 5, 5))
        w = rng.normal(size=(3, 2, 3, 3))
        out, _ = F.conv2d(x, w, None, stride=1, pad=1)
        # naive reference
        xp = np.pad(x, ((0, 0), (0, 0), (1, 1), (1, 1)))
        ref = np.zeros((1, 3, 5, 5))
        for oc in range(3):
            for i in range(5):
                for j in range(5):
                    ref[0, oc, i, j] = (xp[0, :, i:i + 3, j:j + 3] * w[oc]).sum()
        np.testing.assert_allclose(out, ref, atol=1e-10)

    def test_bias(self, rng):
        x = rng.normal(size=(2, 2, 4, 4))
        w = rng.normal(size=(3, 2, 1, 1))
        b = np.array([1.0, -2.0, 0.5])
        out, _ = F.conv2d(x, w, b)
        out0, _ = F.conv2d(x, w, None)
        np.testing.assert_allclose(out - out0, b[None, :, None, None]
                                   * np.ones_like(out))

    def test_channel_mismatch_raises(self, rng):
        x = rng.normal(size=(1, 2, 4, 4))
        w = rng.normal(size=(3, 5, 3, 3))
        with pytest.raises(ValueError, match="channel mismatch"):
            F.conv2d(x, w)

    @pytest.mark.parametrize("stride,pad", [(1, 1), (2, 1), (1, 0), (2, 2)])
    def test_grad_x(self, rng, stride, pad):
        x = rng.normal(size=(2, 2, 6, 6))
        w = rng.normal(size=(3, 2, 3, 3))

        def loss():
            out, _ = F.conv2d(x, w, None, stride, pad)
            return float((out ** 2).sum())

        out, cache = F.conv2d(x, w, None, stride, pad)
        gx, gw, gb = F.conv2d_backward(2 * out, cache)
        np.testing.assert_allclose(gx, numeric_grad(loss, x), atol=1e-5)
        np.testing.assert_allclose(gw, numeric_grad(loss, w), atol=1e-5)


class TestDepthwiseConv2d:
    def test_matches_grouped_naive(self, rng):
        x = rng.normal(size=(1, 3, 5, 5))
        w = rng.normal(size=(3, 1, 3, 3))
        out, _ = F.depthwise_conv2d(x, w, None, 1, 1)
        for c in range(3):
            ref, _ = F.conv2d(x[:, c:c + 1], w[c:c + 1], None, 1, 1)
            np.testing.assert_allclose(out[:, c:c + 1], ref, atol=1e-10)

    def test_grad(self, rng):
        x = rng.normal(size=(1, 2, 5, 5))
        w = rng.normal(size=(2, 1, 3, 3))

        def loss():
            out, _ = F.depthwise_conv2d(x, w, None, 1, 1)
            return float((out ** 2).sum())

        out, cache = F.depthwise_conv2d(x, w, None, 1, 1)
        gx, gw, gb = F.depthwise_conv2d_backward(2 * out, cache)
        np.testing.assert_allclose(gx, numeric_grad(loss, x), atol=1e-5)
        np.testing.assert_allclose(gw, numeric_grad(loss, w), atol=1e-5)

    def test_shape_mismatch_raises(self, rng):
        x = rng.normal(size=(1, 2, 4, 4))
        w = rng.normal(size=(3, 1, 3, 3))
        with pytest.raises(ValueError):
            F.depthwise_conv2d(x, w)


# ---------------------------------------------------------------------------
# Pooling
# ---------------------------------------------------------------------------

class TestPooling:
    def test_avg_pool_values(self):
        x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        out, _ = F.avg_pool2d(x, 2)
        np.testing.assert_allclose(out[0, 0], [[2.5, 4.5], [10.5, 12.5]])

    def test_avg_pool_grad(self, rng):
        x = rng.normal(size=(1, 2, 4, 4))

        def loss():
            out, _ = F.avg_pool2d(x, 2)
            return float((out ** 2).sum())

        out, cache = F.avg_pool2d(x, 2)
        gx = F.avg_pool2d_backward(2 * out, cache)
        np.testing.assert_allclose(gx, numeric_grad(loss, x), atol=1e-6)

    def test_global_avg_pool(self, rng):
        x = rng.normal(size=(2, 3, 4, 4))
        out, shape = F.global_avg_pool(x)
        np.testing.assert_allclose(out, x.mean(axis=(2, 3)))
        gx = F.global_avg_pool_backward(np.ones_like(out), shape)
        np.testing.assert_allclose(gx, 1.0 / 16)


# ---------------------------------------------------------------------------
# Activations
# ---------------------------------------------------------------------------

class TestActivations:
    @pytest.mark.parametrize("fwd,bwd", [
        (F.relu, F.relu_backward),
        (F.hswish, F.hswish_backward),
        (F.hsigmoid, F.hsigmoid_backward),
    ])
    def test_grad(self, rng, fwd, bwd):
        # avoid kink points by keeping values away from -3, 0, 3
        x = rng.normal(size=(4, 5)) * 2.0
        x += np.sign(x) * 0.05
        x[np.abs(np.abs(x) - 3.0) < 0.1] += 0.3

        def loss():
            out, _ = fwd(x)
            return float((out ** 2).sum())

        out, cache = fwd(x)
        gx = bwd(2 * out, cache)
        np.testing.assert_allclose(gx, numeric_grad(loss, x), atol=1e-5)

    def test_hswish_known_values(self):
        x = np.array([-4.0, -3.0, 0.0, 3.0, 5.0])
        out, _ = F.hswish(x)
        np.testing.assert_allclose(out, [0.0, 0.0, 0.0, 3.0, 5.0])

    def test_hsigmoid_range(self, rng):
        x = rng.normal(size=100) * 10
        out, _ = F.hsigmoid(x)
        assert out.min() >= 0.0 and out.max() <= 1.0

    def test_sigmoid_stability(self):
        x = np.array([-1000.0, 0.0, 1000.0])
        out = F.sigmoid(x)
        np.testing.assert_allclose(out, [0.0, 0.5, 1.0], atol=1e-12)


# ---------------------------------------------------------------------------
# Softmax / losses
# ---------------------------------------------------------------------------

class TestLosses:
    def test_softmax_normalized(self, rng):
        x = rng.normal(size=(5, 7)) * 50
        p = F.softmax(x)
        np.testing.assert_allclose(p.sum(axis=1), 1.0)
        assert np.isfinite(p).all()

    def test_log_softmax_consistent(self, rng):
        x = rng.normal(size=(3, 4))
        np.testing.assert_allclose(np.exp(F.log_softmax(x)), F.softmax(x))

    def test_cross_entropy_grad(self, rng):
        logits = rng.normal(size=(4, 5))
        targets = np.array([0, 2, 4, 1])

        def loss():
            l, _ = F.cross_entropy(logits, targets)
            return l

        _, cache = F.cross_entropy(logits, targets)
        g = F.cross_entropy_backward(cache)
        np.testing.assert_allclose(g, numeric_grad(loss, logits), atol=1e-6)

    def test_cross_entropy_soft_grad(self, rng):
        logits = rng.normal(size=(3, 4))
        soft = F.softmax(rng.normal(size=(3, 4)))

        def loss():
            l, _ = F.cross_entropy(logits, None, soft_targets=soft)
            return l

        _, cache = F.cross_entropy(logits, None, soft_targets=soft)
        g = F.cross_entropy_backward(cache)
        np.testing.assert_allclose(g, numeric_grad(loss, logits), atol=1e-6)

    def test_perfect_prediction_low_loss(self):
        logits = np.array([[100.0, 0.0], [0.0, 100.0]])
        loss, _ = F.cross_entropy(logits, np.array([0, 1]))
        assert loss < 1e-10


# ---------------------------------------------------------------------------
# BatchNorm
# ---------------------------------------------------------------------------

class TestBatchNorm:
    def test_normalizes(self, rng):
        x = rng.normal(loc=5.0, scale=3.0, size=(8, 4, 6, 6))
        gamma, beta = np.ones(4), np.zeros(4)
        rm, rv = np.zeros(4), np.ones(4)
        out, _ = F.batchnorm2d(x, gamma, beta, rm, rv, training=True)
        np.testing.assert_allclose(out.mean(axis=(0, 2, 3)), 0.0, atol=1e-10)
        np.testing.assert_allclose(out.var(axis=(0, 2, 3)), 1.0, atol=1e-4)

    def test_running_stats_updated(self, rng):
        x = rng.normal(loc=2.0, size=(16, 3, 4, 4))
        rm, rv = np.zeros(3), np.ones(3)
        F.batchnorm2d(x, np.ones(3), np.zeros(3), rm, rv, training=True,
                      momentum=1.0)
        np.testing.assert_allclose(rm, x.mean(axis=(0, 2, 3)))
        np.testing.assert_allclose(rv, x.var(axis=(0, 2, 3)))

    def test_eval_uses_running_stats(self, rng):
        x = rng.normal(size=(4, 2, 3, 3))
        rm = np.array([1.0, -1.0])
        rv = np.array([4.0, 0.25])
        out, _ = F.batchnorm2d(x, np.ones(2), np.zeros(2), rm.copy(),
                               rv.copy(), training=False)
        expect = (x - rm[None, :, None, None]) / np.sqrt(
            rv[None, :, None, None] + 1e-5)
        np.testing.assert_allclose(out, expect)

    def test_grad_training(self, rng):
        x = rng.normal(size=(4, 2, 3, 3))
        gamma = rng.normal(size=2)
        beta = rng.normal(size=2)

        def loss():
            rm, rv = np.zeros(2), np.ones(2)
            out, _ = F.batchnorm2d(x, gamma, beta, rm, rv, training=True)
            return float((out ** 3).sum())  # nonlinear to exercise xhat grad

        rm, rv = np.zeros(2), np.ones(2)
        out, cache = F.batchnorm2d(x, gamma, beta, rm, rv, training=True)
        gx, gg, gb = F.batchnorm2d_backward(3 * out ** 2, cache)
        np.testing.assert_allclose(gx, numeric_grad(loss, x), atol=1e-4)
        np.testing.assert_allclose(gg, numeric_grad(loss, gamma), atol=1e-4)
        np.testing.assert_allclose(gb, numeric_grad(loss, beta), atol=1e-4)


# ---------------------------------------------------------------------------
# Linear
# ---------------------------------------------------------------------------

class TestLinear:
    def test_values(self, rng):
        x = rng.normal(size=(3, 4))
        w = rng.normal(size=(5, 4))
        b = rng.normal(size=5)
        out, _ = F.linear(x, w, b)
        np.testing.assert_allclose(out, x @ w.T + b)

    def test_grad(self, rng):
        x = rng.normal(size=(3, 4))
        w = rng.normal(size=(5, 4))

        def loss():
            out, _ = F.linear(x, w)
            return float((out ** 2).sum())

        out, cache = F.linear(x, w)
        gx, gw, gb = F.linear_backward(2 * out, cache)
        np.testing.assert_allclose(gx, numeric_grad(loss, x), atol=1e-6)
        np.testing.assert_allclose(gw, numeric_grad(loss, w), atol=1e-6)
