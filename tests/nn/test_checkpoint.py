"""Checkpoint save/load round trips for networks and policies."""

import numpy as np
import pytest

from repro.devices import rpi4
from repro.nas import Supernet, max_arch, tiny_space
from repro.nn import BatchNorm2d, Linear, Sequential
from repro.rl import EnvConfig, LSTMPolicy, MurmurationEnv
from repro.nas import MBV3_SPACE
from repro.utils import load_module, module_arrays, save_module


class TestCheckpoint:
    def test_roundtrip_simple_module(self, tmp_path, rng):
        m1 = Sequential(Linear(4, 8), Linear(8, 3))
        path = str(tmp_path / "m.npz")
        save_module(m1, path)
        m2 = Sequential(Linear(4, 8), Linear(8, 3))
        load_module(m2, path)
        x = rng.normal(size=(2, 4))
        np.testing.assert_allclose(m1(x), m2(x))

    def test_bn_statistics_preserved(self, tmp_path, rng):
        m1 = Sequential(BatchNorm2d(3))
        # accumulate non-trivial running stats
        for _ in range(5):
            m1(rng.normal(loc=2.0, size=(8, 3, 4, 4)))
        path = str(tmp_path / "bn.npz")
        save_module(m1, path)
        m2 = Sequential(BatchNorm2d(3))
        load_module(m2, path)
        bn1, bn2 = m1[0], m2[0]
        np.testing.assert_allclose(bn2.running_mean, bn1.running_mean)
        np.testing.assert_allclose(bn2.running_var, bn1.running_var)
        m1.eval(), m2.eval()
        x = rng.normal(size=(2, 3, 4, 4))
        np.testing.assert_allclose(m1(x), m2(x))

    def test_supernet_roundtrip(self, tmp_path, rng):
        space = tiny_space()
        n1 = Supernet(space, seed=0)
        path = str(tmp_path / "super.npz")
        save_module(n1, path)
        n2 = Supernet(space, seed=99)  # different init
        load_module(n2, path)
        x = rng.normal(size=(1, 3, 32, 32))
        n1.eval(), n2.eval()
        a = max_arch(space)
        np.testing.assert_allclose(n1.forward_arch(x, a),
                                   n2.forward_arch(x, a))

    def test_policy_roundtrip(self, tmp_path):
        env = MurmurationEnv(MBV3_SPACE, [rpi4(), rpi4()], EnvConfig())
        p1 = LSTMPolicy.for_env(env)
        path = str(tmp_path / "policy.npz")
        save_module(p1, path)
        p2 = LSTMPolicy.for_env(env)
        load_module(p2, path)
        task = env.sample_task(np.random.default_rng(0))
        ctx = env.encode_task(task)
        np.testing.assert_array_equal(p1.greedy_actions(ctx, env.schedule),
                                      p2.greedy_actions(ctx, env.schedule))

    def test_module_arrays_includes_stats(self):
        m = Sequential(BatchNorm2d(3), Linear(3, 2))
        arrays = module_arrays(m)
        assert any(k.startswith("__stat") for k in arrays)
        assert any(not k.startswith("__stat") for k in arrays)

    def test_load_missing_file_raises(self, tmp_path):
        m = Sequential(Linear(2, 2))
        with pytest.raises(FileNotFoundError):
            load_module(m, str(tmp_path / "nope.npz"))

    def test_npz_suffix_optional(self, tmp_path, rng):
        m1 = Sequential(Linear(2, 2))
        save_module(m1, str(tmp_path / "m"))
        m2 = Sequential(Linear(2, 2))
        load_module(m2, str(tmp_path / "m"))  # resolves m.npz
        x = rng.normal(size=(1, 2))
        np.testing.assert_allclose(m1(x), m2(x))
