"""Multi-tenant scenario: stream determinism, tenant threading, and
record/replay round trips (scenario name ``multi_tenant``)."""

import io

import numpy as np
import pytest

from repro.eval.multi_tenant import (MultiTenantConfig, TenantSpec,
                                     default_tenants, run_multi_tenant,
                                     tenant_arrivals)
from repro.eval.replay import replay_stats, rerecord, verify_invariants
from repro.telemetry.recorder import read_recordings, write_recordings

_CFG = MultiTenantConfig(num_requests=60, trace_steps=60)


@pytest.fixture(scope="module")
def reports():
    return run_multi_tenant(_CFG)


class TestTenantSpec:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError, match="rate_hz"):
            TenantSpec("a", rate_hz=0.0)
        with pytest.raises(ValueError, match="weight"):
            TenantSpec("a", rate_hz=1.0, weight=-1.0)
        with pytest.raises(ValueError, match="burst_factor"):
            TenantSpec("a", rate_hz=1.0, burst_factor=0.0)

    def test_config_rejects_duplicate_tenant_names(self):
        with pytest.raises(ValueError, match="unique"):
            MultiTenantConfig(tenants=(TenantSpec("a", 1.0),
                                       TenantSpec("a", 2.0)))
        with pytest.raises(ValueError, match="at least one"):
            MultiTenantConfig(tenants=())

    def test_default_tenants_shape(self):
        specs = default_tenants(3)
        assert [s.name for s in specs] == ["burst", "steady-1", "steady-2"]
        assert specs[0].burst_factor > 1 and specs[0].burst_window
        with pytest.raises(ValueError):
            default_tenants(0)

    def test_from_dict_round_trips_the_config(self):
        from dataclasses import asdict
        cfg = MultiTenantConfig(num_requests=10)
        assert MultiTenantConfig.from_dict(asdict(cfg)) == cfg


class TestTenantArrivals:
    def test_stream_is_a_pure_function_of_the_config(self):
        t1, n1 = tenant_arrivals(_CFG)
        t2, n2 = tenant_arrivals(_CFG)
        assert np.array_equal(t1, t2) and n1 == n2

    def test_stream_is_sorted_and_fully_tagged(self):
        times, names = tenant_arrivals(_CFG)
        assert len(times) == len(names) == _CFG.num_requests
        assert np.all(np.diff(times) >= 0)
        assert set(names) <= {t.name for t in _CFG.tenants}

    def test_burst_concentrates_the_bursters_arrivals(self):
        times, names = tenant_arrivals(MultiTenantConfig(num_requests=200))
        t0, t1 = default_tenants()[0].burst_window
        in_window = sum(1 for t, n in zip(times, names)
                        if n == "burst" and t0 <= t < t1)
        before = sum(1 for t, n in zip(times, names)
                     if n == "burst" and t < t0)
        assert in_window > before   # 8x the rate inside the window


class TestScenario:
    def test_identical_stream_across_variants(self, reports):
        streams = [[(r.arrival, r.tenant) for r in rep.stats.records]
                   for rep in reports.values()]
        assert streams[0] == streams[1] == streams[2]

    def test_fifo_has_no_control_and_sheds_nothing(self, reports):
        assert reports["fifo"].control is None
        assert reports["fifo"].shed == 0

    def test_contention_is_observed(self, reports):
        for rep in reports.values():
            assert rep.tracker is not None
            assert rep.tracker.contended_total > 0

    def test_single_tenant_without_overlap_is_contention_free(self):
        """Acceptance: one tenant whose uploads never overlap serves
        bit-identically with the tracker on or off — attaching the
        contention model to a quiet system must not move a float."""
        lone = (TenantSpec("only", rate_hz=0.2),)
        base = MultiTenantConfig(tenants=lone, num_requests=15,
                                 trace_steps=60)
        on = run_multi_tenant(base, variants=("fifo",))["fifo"]
        off = run_multi_tenant(
            MultiTenantConfig(tenants=lone, num_requests=15,
                              trace_steps=60, contention=False),
            variants=("fifo",))["fifo"]
        assert on.tracker.contended_total == 0   # genuinely no overlap
        assert off.tracker is None
        assert on.stats.records == off.stats.records


class TestRecordReplay:
    @pytest.fixture(scope="class")
    def recorded(self):
        return run_multi_tenant(_CFG, record=True, variants=("fifo", "fair"))

    def test_replay_reproduces_stats_exactly(self, recorded):
        for rep in recorded.values():
            stats = replay_stats(rep.recorder.recording())
            assert stats.records == rep.stats.records

    def test_recordings_satisfy_all_invariants(self, recorded):
        for rep in recorded.values():
            assert verify_invariants(rep.recorder.recording()) == []

    def test_summary_carries_per_tenant_counts(self, recorded):
        summary = recorded["fair"].recorder.summary
        assert sum(summary["tenants"].values()) == _CFG.num_requests
        assert set(summary["tenants"]) == {t.name for t in _CFG.tenants}

    def test_tenant_count_drift_is_detected(self, recorded):
        rec = recorded["fair"].recorder.recording()
        rec.summary = dict(rec.summary)
        rec.summary["tenants"] = dict(rec.summary["tenants"])
        key = next(iter(rec.summary["tenants"]))
        rec.summary["tenants"][key] += 1
        assert any("tenants" in p for p in verify_invariants(rec))

    def test_rerecord_dispatches_and_matches_byte_for_byte(self, recorded):
        first = io.StringIO()
        write_recordings(first, [recorded["fair"].recorder])
        rec = read_recordings(io.StringIO(first.getvalue()))[0]
        assert rec.scenario == "multi_tenant"
        second = io.StringIO()
        write_recordings(second, [rerecord(rec)])
        assert first.getvalue() == second.getvalue()

    def test_tenant_tag_survives_the_json_round_trip(self, recorded):
        buf = io.StringIO()
        write_recordings(buf, [recorded["fair"].recorder])
        rec = read_recordings(io.StringIO(buf.getvalue()))[0]
        stats = replay_stats(rec)
        assert stats.records == recorded["fair"].stats.records
        assert stats.tenants() == recorded["fair"].stats.tenants()
