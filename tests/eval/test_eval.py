"""Figure drivers: shapes of the returned structures and the paper's
qualitative claims on reduced grids (full grids run in benchmarks/)."""

import pytest

from repro.core import SLO
from repro.eval import (MurmurationOracle, augmented_devices,
                        fig13_augmented_accuracy, fig15_accuracy_slo_latency,
                        fig16b_compliance_swarm, fig17_scalability,
                        fig18_search_time, fig19_switch_time,
                        format_accuracy_grid, format_compliance,
                        format_latency_grid, format_scalability,
                        format_search_time, format_switch_time,
                        lattice_archs, swarm_devices)
from repro.nas import MBV3_SPACE
from repro.nas.evolution import EvolutionConfig
from repro.netsim import NetworkCondition


class TestOracle:
    def test_lattice_covers_all_levels(self):
        archs = lattice_archs(MBV3_SPACE)
        assert len(archs) == 5 * 3 * 3 * 3
        assert len({a.resolution for a in archs}) == 5

    def test_latency_slo_maximizes_accuracy(self):
        oracle = MurmurationOracle(MBV3_SPACE, augmented_devices())
        cond = NetworkCondition((400.0,), (5.0,))
        loose = oracle.decide(SLO.latency(1.0), cond)
        tight = oracle.decide(SLO.latency(0.12), cond)
        assert loose and tight
        assert loose.expected_accuracy >= tight.expected_accuracy

    def test_impossible_slo_none(self):
        oracle = MurmurationOracle(MBV3_SPACE, augmented_devices())
        assert oracle.decide(SLO.latency(0.0001),
                             NetworkCondition((50.0,), (100.0,))) is None


class TestFig13:
    @pytest.fixture(scope="class")
    def data(self):
        return fig13_augmented_accuracy(bandwidths=(50.0, 400.0),
                                        delays=(5.0, 100.0))

    def test_all_methods_present(self, data):
        assert "Murmuration (Ours)" in data
        assert "Neurosurgeon + DenseNet161" in data
        assert len(data) == 8

    def test_murmuration_covers_every_condition(self, data):
        assert all(p.satisfied for p in data["Murmuration (Ours)"].values())

    def test_densenet_covers_nothing(self, data):
        assert not any(p.satisfied
                       for p in data["Neurosurgeon + DenseNet161"].values())

    def test_murmuration_beats_mbv3_on_good_network(self, data):
        ours = data["Murmuration (Ours)"][(5.0, 400.0)]
        mbv3 = data["Neurosurgeon + MobileNetV3"][(5.0, 400.0)]
        assert ours.accuracy > mbv3.accuracy + 2.0  # the paper's "up to 5%"

    def test_formatting_renders(self, data):
        txt = format_accuracy_grid(data)
        assert "Murmuration" in txt and "-" in txt


class TestFig15:
    def test_latency_increases_with_accuracy_slo(self):
        data = fig15_accuracy_slo_latency(accuracy_slos=(73.0, 77.0),
                                          bandwidths=(200.0,))
        ours = data["Murmuration (Ours)"]
        lo = ours[(200.0, 73.0)]
        hi = ours[(200.0, 77.0)]
        assert lo.satisfied and hi.satisfied
        assert hi.latency_ms >= lo.latency_ms

    def test_large_latency_reduction_at_high_accuracy(self):
        """Paper: up to 6.7x latency reduction at tight accuracy SLOs."""
        data = fig15_accuracy_slo_latency(accuracy_slos=(77.0,),
                                          bandwidths=(400.0,))
        ours = data["Murmuration (Ours)"][(400.0, 77.0)]
        feas = [pts[(400.0, 77.0)] for name, pts in data.items()
                if name != "Murmuration (Ours)"
                and pts[(400.0, 77.0)].satisfied]
        assert ours.satisfied and feas
        best_baseline = min(p.latency_ms for p in feas)
        assert best_baseline / ours.latency_ms > 2.0

    def test_format_latency_grid(self):
        data = fig15_accuracy_slo_latency(accuracy_slos=(73.0,),
                                          bandwidths=(100.0,))
        assert "latency ms" in format_latency_grid(data)


class TestFig16:
    def test_murmuration_dominates_swarm_compliance(self):
        data = fig16b_compliance_swarm(latency_slos_ms=(600.0,))
        ours = data["Murmuration (Ours)"][600.0]
        for name, pts in data.items():
            if name != "Murmuration (Ours)":
                assert ours >= pts[600.0]

    def test_compliance_rates_bounded(self):
        data = fig16b_compliance_swarm(latency_slos_ms=(1000.0,))
        for pts in data.values():
            for v in pts.values():
                assert 0.0 <= v <= 100.0

    def test_format(self):
        data = fig16b_compliance_swarm(latency_slos_ms=(600.0,))
        assert "compliance" in format_compliance(data).lower()


class TestFig17:
    def test_latency_improves_with_devices(self):
        data = fig17_scalability(accuracy_slos=(75.0,),
                                 device_counts=(1, 5, 9))
        pts = data[75.0]
        assert pts[9] < pts[5] < pts[1]

    def test_speedup_at_least_1p7(self):
        data = fig17_scalability(accuracy_slos=(75.0,),
                                 device_counts=(1, 9))
        assert data[75.0][1] / data[75.0][9] > 1.7

    def test_format(self):
        data = fig17_scalability(accuracy_slos=(75.0,), device_counts=(1, 2))
        assert "devices" in format_scalability(data)


class TestFig18And19:
    def test_rl_much_faster_even_vs_tiny_evolution(self):
        """With a deliberately tiny evolutionary budget the RL decision
        is still clearly faster; the full-budget ratio (~1000x, Fig. 18)
        is measured in the benchmark."""
        data = fig18_search_time(
            evolution_config=EvolutionConfig(population=16, generations=4),
            repeats=3)
        for dev in ("rpi4", "desktop_gtx1080"):
            assert data["rl"][dev] < data["evolutionary"][dev] / 5
        assert "seconds" in format_search_time(data).lower()

    def test_supernet_switch_is_milliseconds(self):
        data = fig19_switch_time()
        reconf = data["Murmuration (supernet reconfig)"]
        assert reconf < 0.05
        for name, t in data.items():
            if name.startswith("reload"):
                assert t > 10 * reconf
        assert "switch" in format_switch_time(data).lower()
