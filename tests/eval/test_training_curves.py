"""The library driver behind the Fig. 11/12 benchmarks."""

import pytest

from repro.devices import desktop_gtx1080, rpi4
from repro.eval import format_training_curves, run_training_curves


class TestRunTrainingCurves:
    def test_subset_of_methods(self):
        histories = run_training_curves(
            [rpi4(), desktop_gtx1080()], total_steps=64, eval_every=32,
            eval_points=2, methods=["SUPREME (Ours)", "GCSL"])
        assert set(histories) == {"SUPREME (Ours)", "GCSL"}
        for h in histories.values():
            assert len(h.steps) >= 1

    def test_include_dqn(self):
        histories = run_training_curves(
            [rpi4(), rpi4()], total_steps=32, eval_every=32, eval_points=2,
            methods=["PPO"], include_dqn=True)
        assert "DQN" in histories

    def test_unknown_method(self):
        with pytest.raises(ValueError):
            run_training_curves([rpi4()], total_steps=16,
                                methods=["AlphaZero"])

    def test_formatting(self):
        histories = run_training_curves(
            [rpi4(), desktop_gtx1080()], total_steps=32, eval_every=32,
            eval_points=2, methods=["GCSL"])
        txt = format_training_curves(histories)
        assert "Fig. 11" in txt and "Fig. 12" in txt and "GCSL" in txt
