"""Record/replay: golden-run regression tests and serving invariants.

The golden fixture is a full ``serving_load`` recording (seed 7, 12
requests, timelines on) checked in under ``tests/fixtures/``.  It pins
the serving stack three ways:

* **replay** — stats re-derived from the recording must equal the
  recorded summary field for field (floats survive JSON round trips
  exactly, so equality is ``==``, not a tolerance);
* **re-record** — re-running the recorded config live must produce a
  byte-identical stream (any clock or accounting drift diffs);
* **invariants** — every recording must satisfy the serving-time
  conservation laws that ``verify_invariants`` encodes.

Regenerate the fixture (only after an *intentional* schema or clock
change) with::

    PYTHONPATH=src python -m repro.cli record --requests 12 --seed 7 \
        --timelines --out tests/fixtures/serving_load_golden.jsonl
"""

import copy
import io
import math
from pathlib import Path

import pytest

from repro.eval.replay import (format_replay, load_recordings,
                               replay_serving_load, replay_stats, rerecord,
                               verify_invariants)
from repro.eval.serving_load import (ServingLoadConfig, format_serving_load,
                                     run_serving_load)
from repro.runtime.batching import BatchedServingStats
from repro.runtime.server import ServingStats
from repro.telemetry import Recording, Telemetry, write_recordings

GOLDEN = Path(__file__).resolve().parents[1] / "fixtures" \
    / "serving_load_golden.jsonl"

VARIANTS = ["fifo", "batched", "batched-serial"]


@pytest.fixture(scope="module")
def golden():
    return load_recordings(str(GOLDEN))


@pytest.fixture(scope="module")
def fresh(golden):
    """The golden scenario re-run live, recorded the same way."""
    cfg = ServingLoadConfig(**golden[0].config)
    return run_serving_load(cfg, telemetry=Telemetry(), record=True)


class TestGoldenFixture:
    def test_fixture_holds_all_three_variants(self, golden):
        assert [rec.variant for rec in golden] == VARIANTS
        assert all(rec.scenario == "serving_load" for rec in golden)
        assert all(rec.schema == 1 for rec in golden)

    def test_replay_types_follow_the_variant(self, golden):
        by_name = {rec.variant: replay_stats(rec) for rec in golden}
        assert type(by_name["fifo"]) is ServingStats
        assert type(by_name["batched"]) is BatchedServingStats
        assert type(by_name["batched-serial"]) is BatchedServingStats

    def test_replay_reproduces_summary_field_for_field(self, golden):
        """Aggregates re-derived from request records alone must equal
        the summary the live run wrote — exactly, no tolerance."""
        for rec in golden:
            stats = replay_stats(rec)
            s = rec.summary
            assert len(stats.records) == s["num_requests"]
            assert stats.throughput_rps == s["throughput_rps"]
            assert stats.percentile_ms(50) == s["p50_ms"]
            assert stats.percentile_ms(95) == s["p95_ms"]
            assert stats.mean_queue_wait_ms == s["mean_queue_wait_ms"]
            assert stats.slo_compliance == s["slo_compliance"]
            assert stats.completion_rate == s["completion_rate"]
            assert stats.outcome_counts() == s["outcomes"]
            if isinstance(stats, BatchedServingStats):
                assert len(stats.batches) == s["num_batches"]
                assert stats.mean_batch_size == s["mean_batch_size"]
                assert stats.amortized_decisions == s["amortized_decisions"]
                assert stats.overlap_saved_s == s["overlap_saved_s"]

    def test_golden_recordings_satisfy_all_invariants(self, golden):
        for rec in golden:
            assert verify_invariants(rec) == []

    def test_rerecording_is_byte_identical(self, golden, fresh):
        """The determinism guard: same seeds, same bytes."""
        buf = io.StringIO()
        write_recordings(buf, [fresh[name].recorder for name in VARIANTS])
        assert buf.getvalue() == GOLDEN.read_text()

    def test_timelines_recorded_for_instrumented_variant(self, golden):
        by_name = {rec.variant: rec for rec in golden}
        assert len(by_name["batched"].timelines) > 0
        for tl in by_name["batched"].timelines:
            for ev in tl["events"]:
                assert "wall_duration_s" not in ev


class TestLiveEqualsReplay:
    def test_replay_equals_live_stats_exactly(self, fresh):
        """ServingStats rebuilt from a recording must ``==`` the stats
        object the live run returned, for every variant."""
        for name in VARIANTS:
            rep = fresh[name]
            assert replay_stats(rep.recorder.recording()) == rep.stats

    def test_equality_survives_the_byte_round_trip(self, fresh):
        buf = io.StringIO()
        write_recordings(buf, [fresh[name].recorder for name in VARIANTS])
        buf.seek(0)
        for rec in load_recordings(buf):
            assert replay_stats(rec) == fresh[rec.variant].stats

    def test_fresh_recordings_satisfy_all_invariants(self, fresh):
        for name in VARIANTS:
            assert verify_invariants(
                fresh[name].recorder.recording()) == []


class TestServingInvariants:
    """Property checks on the live runtime's own accounting."""

    def test_arrival_start_finish_ordering(self, fresh):
        for name in VARIANTS:
            for r in fresh[name].stats.records:
                assert r.arrival <= r.start <= r.finish

    def test_fifo_conserves_simulated_time_per_request(self, fresh):
        for r in fresh["fifo"].stats.records:
            assert math.isclose(
                r.finish,
                r.start + r.decision_s + r.switch_s + r.inference_s,
                rel_tol=1e-9, abs_tol=1e-12)

    def _members_by_batch(self, recorder):
        members = {}
        for req in recorder.requests:
            if req["batch"] is not None:
                members.setdefault(req["batch"], []).append(req)
        return members

    def test_batch_amortized_costs_sum_to_batch_cost(self, fresh):
        for name in ("batched", "batched-serial"):
            rec = fresh[name].recorder
            members = self._members_by_batch(rec)
            assert members, "expected batched requests"
            for b in fresh[name].stats.batches:
                group = members[b.index]
                assert len(group) == b.size
                amortized = sum(m["decision_s"] + m["switch_s"]
                                for m in group)
                assert math.isclose(amortized, b.decision_s + b.switch_s,
                                    rel_tol=1e-9, abs_tol=1e-12)

    def test_simulated_time_conserved_across_infer_batch(self, fresh):
        for name in ("batched", "batched-serial"):
            rec = fresh[name].recorder
            members = self._members_by_batch(rec)
            for b in fresh[name].stats.batches:
                assert (b.exec_start_s
                        >= b.decision_start_s + b.decision_s + b.switch_s
                        - 1e-12)
                span = sum(m["inference_s"] for m in members[b.index])
                assert math.isclose(b.exec_start_s + span, b.finish_s,
                                    rel_tol=1e-9, abs_tol=1e-12)
                for m in members[b.index]:
                    assert m["finish"] <= b.finish_s + 1e-12


def _tampered(rec, mutate):
    clone = copy.deepcopy(rec)
    mutate(clone)
    return verify_invariants(clone)


class TestInvariantDetection:
    """verify_invariants must actually catch corrupted recordings."""

    def _first(self, golden, variant):
        return next(r for r in golden if r.variant == variant)

    def test_detects_time_travel(self, golden):
        def mutate(rec):
            rec.requests[0]["start"] = rec.requests[0]["arrival"] - 1.0
        problems = _tampered(self._first(golden, "fifo"), mutate)
        assert any("arrival <= start <= finish" in p for p in problems)

    def test_detects_unbatched_time_leak(self, golden):
        def mutate(rec):
            rec.requests[0]["inference_s"] += 0.5
        problems = _tampered(self._first(golden, "fifo"), mutate)
        assert any("start + decision + switch + inference" in p
                   for p in problems)

    def test_detects_broken_amortization(self, golden):
        def mutate(rec):
            batched = [r for r in rec.requests if r["batch"] is not None]
            batched[0]["decision_s"] += 0.5
        problems = _tampered(self._first(golden, "batched"), mutate)
        assert any("amortized" in p for p in problems)

    def test_detects_batch_size_mismatch(self, golden):
        def mutate(rec):
            rec.batches[0]["size"] += 1
        problems = _tampered(self._first(golden, "batched"), mutate)
        assert any("size" in p for p in problems)

    def test_detects_orphan_batch_reference(self, golden):
        def mutate(rec):
            batched = [r for r in rec.requests if r["batch"] is not None]
            batched[0]["batch"] = 999
        problems = _tampered(self._first(golden, "batched"), mutate)
        assert any("no batch record exists" in p for p in problems)

    def test_detects_premature_execution(self, golden):
        def mutate(rec):
            rec.batches[0]["exec_start_s"] = (
                rec.batches[0]["decision_start_s"] - 1.0)
        problems = _tampered(self._first(golden, "batched"), mutate)
        assert any("execution starts" in p for p in problems)

    def test_detects_summary_drift(self, golden):
        def mutate(rec):
            rec.summary["p95_ms"] += 1.0
        problems = _tampered(self._first(golden, "fifo"), mutate)
        assert any("p95_ms" in p for p in problems)

    def test_detects_missing_request(self, golden):
        def mutate(rec):
            del rec.requests[3]
        problems = _tampered(self._first(golden, "fifo"), mutate)
        assert any("not dense" in p for p in problems)


class TestReplayDrivers:
    def test_replay_serving_load_feeds_the_figure_driver(self, golden):
        reports = replay_serving_load(golden)
        assert list(reports) == VARIANTS
        table = format_serving_load(reports)
        for name in VARIANTS:
            assert name in table

    def test_replay_serving_load_accepts_a_path(self):
        reports = replay_serving_load(str(GOLDEN))
        assert set(reports) == set(VARIANTS)

    def test_format_replay_digests_every_run(self, golden):
        text = format_replay(golden)
        assert text.count("serving_load/") == 3

    def test_rerecord_refuses_unknown_scenarios(self):
        bogus = Recording(header={"record": "run-header", "schema": 1,
                                  "scenario": "bogus", "variant": "x",
                                  "config": {}})
        with pytest.raises(ValueError, match="bogus"):
            rerecord(bogus)

    def test_rerecord_matches_original(self, golden):
        recorder = rerecord(golden[0])
        assert replay_stats(recorder.recording()) == replay_stats(golden[0])
