"""CSV exporters for external plotting."""

import csv

from repro.eval import (accuracy_grid_to_csv, compliance_to_csv)
from repro.eval.experiments import MethodPoint


class TestCSVExport:
    def test_accuracy_grid_csv(self, tmp_path):
        data = {"m1": {(5.0, 50.0): MethodPoint(True, 75.0, 120.0),
                       (5.0, 100.0): MethodPoint(False, None, None)}}
        path = str(tmp_path / "fig.csv")
        accuracy_grid_to_csv(data, path, row_label="delay", col_label="bw")
        rows = list(csv.reader(open(path)))
        assert rows[0] == ["method", "delay", "bw", "satisfied", "accuracy",
                           "latency_ms"]
        assert rows[1][:4] == ["m1", "5.0", "50.0", "1"]
        assert rows[2][3] == "0" and rows[2][4] == ""

    def test_compliance_csv(self, tmp_path):
        data = {"ours": {600.0: 100.0, 1000.0: 95.5}}
        path = str(tmp_path / "c.csv")
        compliance_to_csv(data, path)
        rows = list(csv.reader(open(path)))
        assert rows[0] == ["method", "slo_ms", "compliance_pct"]
        assert len(rows) == 3
