"""Cross-suite invariants + the fluid-tracker golden fixture.

Two regression layers ride here:

* **every recordable scenario obeys the serving conservation laws** —
  ``verify_invariants`` runs over fresh recordings of *all four*
  scenarios (chaos, mesh_chaos, multi_tenant, adaptive), not just the
  serving-load golden fixture the original replay suite pins.  Any
  clock or accounting drift anywhere in the serving stack turns one of
  these runs into a violation list;
* **the fluid-solver serving path is byte-stable** — a second golden
  fixture (``multi_tenant_fluid_golden.jsonl``: the multi-tenant
  scenario with ``fluid=True``, seed 7, 18 requests) must replay,
  satisfy the invariants, and re-record byte-identically.

Regenerate the fluid fixture (only after an *intentional* schema or
pricing change) with::

    PYTHONPATH=src python - <<'PY'
    from repro.eval.multi_tenant import (MultiTenantConfig,
                                         default_tenants, run_multi_tenant)
    from repro.telemetry import write_recordings
    cfg = MultiTenantConfig(tenants=default_tenants(2), num_requests=18,
                            seed=7, fluid=True)
    reports = run_multi_tenant(cfg, record=True)
    with open("tests/fixtures/multi_tenant_fluid_golden.jsonl", "w") as fh:
        write_recordings(fh, [reports[v].recorder
                              for v in ("fifo", "admission", "fair")])
    PY
"""

import io
from pathlib import Path

import pytest

from repro.eval.replay import (load_recordings, replay_stats, rerecord,
                               verify_invariants)
from repro.telemetry import write_recordings

FLUID_GOLDEN = Path(__file__).resolve().parents[1] / "fixtures" \
    / "multi_tenant_fluid_golden.jsonl"

VARIANTS = ["fifo", "admission", "fair"]


def _recorders_for(scenario):
    """Run one small seeded instance of ``scenario``, recording it."""
    if scenario == "chaos":
        from repro.eval.chaos import ChaosConfig, run_chaos
        reports = run_chaos(ChaosConfig(num_requests=14), record=True)
    elif scenario == "mesh_chaos":
        from repro.eval.mesh_chaos import MeshChaosConfig, run_mesh_chaos
        reports = run_mesh_chaos(MeshChaosConfig(num_requests=14),
                                 record=True)
    elif scenario == "multi_tenant":
        from repro.eval.multi_tenant import (MultiTenantConfig,
                                             run_multi_tenant)
        reports = run_multi_tenant(
            MultiTenantConfig(num_requests=14), record=True)
    elif scenario == "adaptive":
        from repro.eval.adaptive import AdaptiveConfig, run_adaptive
        reports = run_adaptive(AdaptiveConfig(num_requests=14),
                               record=True)
    else:  # pragma: no cover - parametrization typo guard
        raise ValueError(scenario)
    return {name: rep.recorder for name, rep in reports.items()}


class TestCrossSuiteInvariants:
    """Conservation laws hold for every recordable scenario."""

    @pytest.mark.parametrize("scenario", ["chaos", "mesh_chaos",
                                          "multi_tenant", "adaptive"])
    def test_scenario_recordings_satisfy_all_invariants(self, scenario):
        recorders = _recorders_for(scenario)
        assert recorders  # the scenario produced at least one variant
        for name, recorder in recorders.items():
            assert recorder is not None, f"{scenario}/{name} not recorded"
            rec = recorder.recording()
            assert rec.scenario == scenario
            problems = verify_invariants(rec)
            assert problems == [], f"{scenario}/{name}: {problems}"

    def test_adaptive_recordings_roundtrip_through_the_stream(self):
        """``record=True`` on run_adaptive yields a parseable stream
        whose replayed stats match the live run (new capability)."""
        from repro.eval.adaptive import AdaptiveConfig, run_adaptive
        reports = run_adaptive(AdaptiveConfig(num_requests=14),
                               record=True)
        buf = io.StringIO()
        write_recordings(buf, [reports[n].recorder
                               for n in ("static", "controlled")])
        buf.seek(0)
        recs = load_recordings(buf)
        assert [r.variant for r in recs] == ["static", "controlled"]
        for rec in recs:
            name = rec.variant
            assert replay_stats(rec).records == \
                reports[name].stats.records

    def test_adaptive_rerecord_is_byte_identical(self):
        from repro.eval.adaptive import AdaptiveConfig, run_adaptive
        reports = run_adaptive(AdaptiveConfig(num_requests=14),
                               record=True)
        original = io.StringIO()
        write_recordings(original, [reports["controlled"].recorder])
        fresh = io.StringIO()
        write_recordings(
            fresh,
            [rerecord(reports["controlled"].recorder.recording())])
        assert fresh.getvalue() == original.getvalue()


@pytest.fixture(scope="module")
def fluid_golden():
    return load_recordings(str(FLUID_GOLDEN))


class TestFluidGoldenFixture:
    def test_fixture_holds_all_three_variants(self, fluid_golden):
        assert [rec.variant for rec in fluid_golden] == VARIANTS
        assert all(rec.scenario == "multi_tenant" for rec in fluid_golden)
        assert all(rec.config["fluid"] is True for rec in fluid_golden)

    def test_golden_recordings_satisfy_all_invariants(self, fluid_golden):
        for rec in fluid_golden:
            problems = verify_invariants(rec)
            assert problems == [], f"{rec.variant}: {problems}"

    def test_fluid_pricing_left_its_mark(self, fluid_golden):
        """The fixture is not accidentally a snapshot-tracker run: at
        least one request's upload was slowed by fluid sharing (its
        service start exceeds arrival plus the lone-upload time)."""
        fifo = next(r for r in fluid_golden if r.variant == "fifo")
        waits = [r["start"] - r["arrival"] for r in fifo.requests]
        assert max(waits) > 0.0

    def test_rerecording_is_byte_identical(self, fluid_golden):
        """record -> rerecord byte-stability for the fluid serving path."""
        with open(FLUID_GOLDEN) as fh:
            original = fh.read()
        fresh = io.StringIO()
        write_recordings(fresh, [rerecord(rec) for rec in fluid_golden])
        assert fresh.getvalue() == original

    def test_replay_matches_recorded_summary(self, fluid_golden):
        for rec in fluid_golden:
            stats = replay_stats(rec)
            assert len(stats.records) == rec.summary["num_requests"]
            assert stats.slo_compliance == rec.summary["slo_compliance"]
